#include "sim/sweep_runner.h"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/json.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ndp {

namespace {

/// Process-wide sweep-progress metrics (obs/metrics.h). Queue depth counts
/// cells claimed-or-pending across every in-flight run_sweep in the
/// process — the fleet-mode "how far behind is this worker" signal.
struct SweepMetrics {
  obs::Counter& cells_ok = obs::Metrics::instance().counter(
      "ndpsim_sweep_cells_total", "Sweep cells finished, by outcome",
      "outcome=\"ok\"");
  obs::Counter& cells_failed = obs::Metrics::instance().counter(
      "ndpsim_sweep_cells_total", "Sweep cells finished, by outcome",
      "outcome=\"failed\"");
  obs::Gauge& queue_depth = obs::Metrics::instance().gauge(
      "ndpsim_sweep_queue_depth",
      "Cells of in-flight sweeps not yet completed");

  static SweepMetrics& get() {
    static SweepMetrics m;
    return m;
  }
};

}  // namespace

SweepResults run_sweep(const std::vector<RunSpec>& specs,
                       const SweepOptions& opts) {
  const auto t_start = HostProfile::Clock::now();
  SweepResults out;
  if (opts.shard_count > 1) {
    // Round-robin slice: cell k of the full grid belongs to shard
    // k % shard_count, so the (similar-cost) neighbours of a workload or
    // core-count axis spread across shards instead of clumping in one.
    if (opts.shard_index >= opts.shard_count)
      throw std::invalid_argument(
          "run_sweep: shard index " + std::to_string(opts.shard_index) +
          " out of range for " + std::to_string(opts.shard_count) + " shards");
    ShardInfo info;
    info.index = opts.shard_index;
    info.count = opts.shard_count;
    info.total_cells = specs.size();
    for (std::size_t k = opts.shard_index; k < specs.size();
         k += opts.shard_count) {
      info.indices.push_back(k);
      out.cells.emplace_back();
      out.cells.back().spec = specs[k];
    }
    out.shard = std::move(info);
  } else {
    out.cells.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
      out.cells[i].spec = specs[i];
  }

  const std::size_t total = out.cells.size();
  unsigned jobs = opts.jobs ? opts.jobs : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (total < jobs) jobs = static_cast<unsigned>(total ? total : 1);
  out.jobs_used = jobs;

  // All cells route through one thread-safe Session so they share prepared
  // system images; results do not depend on sharing (or the job count).
  // A single-cell sweep with no caller-owned Session has nothing to share
  // with — build direct rather than paying snapshot+restore for zero hits —
  // unless an on-disk store is configured: then even one cell can restore
  // from (and warm) a previous process's snapshots.
  SessionOptions session_opts;
  session_opts.share_images =
      opts.share_images && (total > 1 || !opts.image_store.empty());
  session_opts.image_store = opts.image_store;
  Session local_session(session_opts);
  Session& session = opts.session ? *opts.session : local_session;

  // Work-stealing by atomic index: completion order varies with scheduling,
  // but cell i always lands in slot i, so the result set is deterministic.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> finished{0};  ///< ok + failed (gauge accounting)
  std::atomic<bool> failed{false};
  std::mutex mu;  // guards progress callback + first_error
  std::exception_ptr first_error;

  SweepMetrics::get().queue_depth.add(static_cast<std::int64_t>(total));

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed) &&
           !(opts.cancel && opts.cancel->load(std::memory_order_relaxed))) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      SweepCell& cell = out.cells[i];
      try {
        // Perfetto view: one "cell" span per executed spec, with the host
        // phases (build/prefault/run/...) nested inside it on this thread.
        obs::ScopedTraceSpan span(
            cell.spec.mechanism_label() + '/' + cell.spec.workload_label() +
                '/' + std::to_string(cell.spec.cores) + 'c',
            "cell");
        cell.result = session.run(cell.spec);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        SweepMetrics::get().cells_failed.inc();
        SweepMetrics::get().queue_depth.add(-1);
        finished.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      SweepMetrics::get().cells_ok.inc();
      SweepMetrics::get().queue_depth.add(-1);
      finished.fetch_add(1, std::memory_order_relaxed);
      const std::size_t completed =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (opts.progress || opts.cell_done) {
        std::lock_guard<std::mutex> lock(mu);
        if (opts.progress) opts.progress(completed, total, cell.spec);
        if (opts.cell_done) opts.cell_done(i, cell);
      }
    }
  };

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  // Cells never claimed (cancellation, a failed sibling) leave the queue
  // with the sweep — the gauge must not drift upward across runs.
  SweepMetrics::get().queue_depth.add(-static_cast<std::int64_t>(
      total - finished.load(std::memory_order_relaxed)));
  if (first_error) std::rethrow_exception(first_error);
  out.session = session.stats();
  out.host_wall_ns = HostProfile::since_ns(t_start);
  return out;
}

SweepResults run_sweep(const RunConfig& config, const SweepOptions& opts) {
  SweepOptions effective = opts;
  // The config's opt-out wins: an experiment that pins "share_images":
  // false must run fresh-built cells whatever the caller's default — a
  // caller-pooled Session included, since that would share regardless of
  // its own flag.
  if (!config.share_images) {
    effective.share_images = false;
    effective.session = nullptr;
  }
  // The config can name a store directory; an explicit caller value (the
  // --image-store flag) wins.
  if (effective.image_store.empty()) effective.image_store = config.image_store;
  SweepResults out = run_sweep(config.expand(), effective);
  out.name = config.name;
  out.baseline = config.baseline;
  return out;
}

HostProfile SweepResults::merged_host_profile() const {
  HostProfile p;
  for (const SweepCell& c : cells) p.merge(c.result.host_profile);
  return p;
}

HostCounters SweepResults::merged_host_counters() const {
  HostCounters h;
  for (const SweepCell& c : cells) h.merge(c.result.host);
  return h;
}

std::uint64_t SweepResults::total_instructions() const {
  std::uint64_t n = 0;
  for (const SweepCell& c : cells) n += c.result.total_instructions();
  return n;
}

// --- aggregation ------------------------------------------------------------

double metric_of(const RunResult& r, Metric m) {
  switch (m) {
    case Metric::kCycles: return static_cast<double>(r.total_cycles);
    case Metric::kIpc: return r.ipc;
    case Metric::kPtwLatency: return r.avg_ptw_latency;
    case Metric::kTranslationFraction: return r.translation_fraction;
    case Metric::kL1TlbMissRate: return r.l1_tlb_miss_rate;
    case Metric::kL2TlbMissRate: return r.l2_tlb_miss_rate;
    case Metric::kPteAccessShare: return r.pte_access_share;
  }
  return 0.0;
}

std::string to_string(Metric m) {
  switch (m) {
    case Metric::kCycles: return "cycles";
    case Metric::kIpc: return "ipc";
    case Metric::kPtwLatency: return "avg_ptw_latency";
    case Metric::kTranslationFraction: return "translation_fraction";
    case Metric::kL1TlbMissRate: return "l1_tlb_miss_rate";
    case Metric::kL2TlbMissRate: return "l2_tlb_miss_rate";
    case Metric::kPteAccessShare: return "pte_access_share";
  }
  return "?";
}

bool CellFilter::matches(const SweepCell& cell) const {
  if (system && *system != cell.spec.system) return false;
  if (cores && *cores != cell.spec.cores) return false;
  if (mechanism && !iequals(*mechanism, cell.spec.mechanism_label()))
    return false;
  if (workload && !iequals(*workload, cell.spec.workload_label()))
    return false;
  return true;
}

std::vector<double> collect_metric(const SweepResults& results, Metric m,
                                   const CellFilter& filter) {
  std::vector<double> out;
  for (const SweepCell& cell : results.cells)
    if (filter.matches(cell)) out.push_back(metric_of(cell.result, m));
  return out;
}

double mean_metric(const SweepResults& results, Metric m,
                   const CellFilter& filter) {
  const std::vector<double> xs = collect_metric(results, m, filter);
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

Table summary_table(const SweepResults& results) {
  Table t({"system", "cores", "mechanism", "workload", "cycles", "IPC",
           "PTW (cy)", "translation", "PTE share"});
  for (const SweepCell& cell : results.cells) {
    const RunSpec& spec = cell.spec;
    const RunResult& r = cell.result;
    t.add_row(
        {to_string(spec.system), std::to_string(spec.cores),
         spec.mechanism_label(), spec.workload_label(),
         std::to_string(static_cast<unsigned long long>(r.total_cycles)),
         Table::num(r.ipc, 3), Table::num(r.avg_ptw_latency, 1),
         Table::pct(r.translation_fraction), Table::pct(r.pte_access_share)});
  }
  return t;
}

namespace {

/// Distinct values in first-appearance (spec) order.
template <typename Key>
void add_unique(std::vector<Key>& keys, const Key& k) {
  for (const Key& existing : keys)
    if (existing == k) return;
  keys.push_back(k);
}

struct Group {
  std::string system;
  unsigned cores;
  bool operator==(const Group& o) const {
    return system == o.system && cores == o.cores;
  }
};

/// One pass over the cell views, cataloguing the distinct axes; every
/// aggregation query then works on plain string comparisons. Built from
/// CellViews rather than SweepCells so the shard merge tool — which only
/// has parsed envelope text — aggregates through the identical code.
struct Catalog {
  const std::vector<CellView>& cells;   ///< spec order
  std::vector<Group> groups;            ///< first-appearance order
  std::vector<std::string> mechs, wls;  ///< canonical, first-appearance

  explicit Catalog(const std::vector<CellView>& views) : cells(views) {
    for (const CellView& c : cells) {
      add_unique(groups, Group{c.system, c.cores});
      add_unique(mechs, c.mechanism);
      add_unique(wls, c.workload);
    }
  }

  const CellView* find(const Group& g, const std::string& mech,
                       const std::string& wl) const {
    for (const CellView& c : cells)
      if (c.system == g.system && c.cores == g.cores && c.mechanism == mech &&
          c.workload == wl)
        return &c;
    return nullptr;
  }

  const CellView& baseline_cell(const Group& g, const std::string& baseline,
                                const std::string& wl) const {
    if (const CellView* c = find(g, baseline, wl)) return *c;
    throw std::invalid_argument("speedup aggregation: no baseline '" +
                                baseline + "' cell for " + g.system + "/" +
                                std::to_string(g.cores) + " cores/" + wl);
  }

  /// Canonical spelling of a baseline name/alias, via the mechanism column.
  std::string canonical_mechanism(std::string_view name) const {
    for (const std::string& m : mechs)
      if (iequals(m, name)) return m;
    return std::string(name);
  }
};

double speedup_of(const CellView& baseline, const CellView& cell) {
  const double base = static_cast<double>(baseline.total_cycles);
  const double cycles = static_cast<double>(cell.total_cycles);
  return cycles > 0 ? base / cycles : 0.0;
}

std::vector<std::pair<std::string, double>> group_geomeans(
    const Catalog& cat, const std::string& baseline, const Group& g) {
  std::vector<std::pair<std::string, double>> out;
  for (const std::string& mech : cat.mechs) {
    if (mech == baseline) continue;
    std::vector<double> xs;
    for (const std::string& wl : cat.wls) {
      const CellView* c = cat.find(g, mech, wl);
      if (!c) continue;
      xs.push_back(speedup_of(cat.baseline_cell(g, baseline, wl), *c));
    }
    if (!xs.empty()) out.emplace_back(mech, geomean(xs));
  }
  return out;
}

[[noreturn]] void merge_error(const std::string& msg) {
  throw std::invalid_argument("sweep merge: " + msg);
}

void write_aggregate(JsonWriter& w, const Catalog& cat,
                     const std::string& base_name) {
  w.begin_object();
  w.key("baseline").value(base_name);
  w.key("groups").begin_array();
  for (const Group& g : cat.groups) {
    w.begin_object();
    w.key("system").value(g.system);
    w.key("cores").value(g.cores);
    w.key("speedup").begin_object();
    for (const std::string& wl : cat.wls) {
      const CellView& base = cat.baseline_cell(g, base_name, wl);
      w.key(wl).begin_object();
      for (const std::string& mech : cat.mechs) {
        if (mech == base_name) continue;
        if (const CellView* c = cat.find(g, mech, wl))
          w.key(mech).value(speedup_of(base, *c));
      }
      w.end_object();
    }
    w.end_object();
    w.key("geomean").begin_object();
    for (const auto& [mech, gm] : group_geomeans(cat, base_name, g))
      w.key(mech).value(gm);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::vector<CellView> cell_views(const SweepResults& results) {
  std::vector<CellView> out;
  out.reserve(results.cells.size());
  for (const SweepCell& c : results.cells)
    out.push_back({to_string(c.spec.system), c.spec.cores,
                   c.spec.mechanism_label(), c.spec.workload_label(),
                   static_cast<std::uint64_t>(c.result.total_cycles),
                   c.result.avg_ptw_latency});
  return out;
}

std::string aggregate_json(const std::vector<CellView>& cells,
                           std::string_view baseline) {
  const Catalog cat(cells);
  JsonWriter w;
  write_aggregate(w, cat, cat.canonical_mechanism(baseline));
  return w.str();
}

Table speedup_table(const SweepResults& results, std::string_view baseline) {
  const std::vector<CellView> views = cell_views(results);
  const Catalog cat(views);
  const std::string base_name = cat.canonical_mechanism(baseline);
  std::vector<std::string> mechs;
  for (const std::string& m : cat.mechs)
    if (m != base_name) mechs.push_back(m);

  std::vector<std::string> header = {"system", "cores", "workload"};
  header.insert(header.end(), mechs.begin(), mechs.end());
  header.push_back(base_name + " PTW (cy)");
  Table t(std::move(header));

  for (const Group& g : cat.groups) {
    std::vector<std::vector<double>> per_mech(mechs.size());
    for (const std::string& wl : cat.wls) {
      const CellView& base = cat.baseline_cell(g, base_name, wl);
      std::vector<std::string> row = {g.system, std::to_string(g.cores), wl};
      for (std::size_t m = 0; m < mechs.size(); ++m) {
        const CellView* c = cat.find(g, mechs[m], wl);
        if (!c) {
          row.push_back("-");
          continue;
        }
        const double s = speedup_of(base, *c);
        per_mech[m].push_back(s);
        row.push_back(Table::num(s, 3));
      }
      row.push_back(Table::num(base.avg_ptw_latency, 0));
      t.add_row(std::move(row));
    }
    std::vector<std::string> gm = {g.system, std::to_string(g.cores),
                                   "GEOMEAN"};
    for (const std::vector<double>& xs : per_mech)
      gm.push_back(xs.empty() ? "-" : Table::num(geomean(xs), 3));
    gm.push_back("-");
    t.add_row(std::move(gm));
  }
  return t;
}

std::vector<std::pair<std::string, double>> geomean_speedups(
    const SweepResults& results, std::string_view baseline, SystemKind system,
    unsigned cores) {
  const std::vector<CellView> views = cell_views(results);
  const Catalog cat(views);
  return group_geomeans(cat, cat.canonical_mechanism(baseline),
                        Group{to_string(system), cores});
}

std::string to_json(const SweepResults& results) {
  std::string out = "{\"name\":\"" + JsonWriter::escape(results.name) +
                    "\",\"results\":[";
  for (std::size_t i = 0; i < results.cells.size(); ++i) {
    if (i) out += ',';
    out += to_json(results.cells[i].result, &results.cells[i].spec,
                   results.include_host_profile);
  }
  out += ']';
  if (results.include_host_profile) {
    // Sweep-level summary: wall time, throughput, and the merged per-phase
    // host profile. Opt-in only — these numbers vary run to run.
    const HostProfile merged = results.merged_host_profile();
    const std::uint64_t instrs = results.total_instructions();
    const double wall_s =
        static_cast<double>(results.host_wall_ns) / 1e9;
    JsonWriter w;
    w.begin_object();
    w.key("jobs").value(results.jobs_used);
    w.key("cells").value(static_cast<std::uint64_t>(results.cells.size()));
    w.key("wall_ns").value(results.host_wall_ns);
    w.key("cells_per_sec")
        .value(wall_s > 0 ? static_cast<double>(results.cells.size()) / wall_s
                          : 0.0);
    w.key("simulated_instructions").value(instrs);
    w.key("host_ns_per_instruction")
        .value(instrs ? static_cast<double>(results.host_wall_ns) /
                            static_cast<double>(instrs)
                      : 0.0);
    w.key("merged");
    write_host_profile(w, merged, results.merged_host_counters());
    w.key("session");
    write_session_stats(w, results.session);
    w.end_object();
    out += ",\"host_profile\":" + w.str();
  }
  if (results.shard) {
    // A slice can't compute "aggregate" (its baseline cells may live in
    // another shard); it records provenance instead, and sweep_merge
    // restores the full document — including the aggregate — from N slices.
    const ShardInfo& s = *results.shard;
    JsonWriter w;
    w.begin_object();
    w.key("index").value(s.index);
    w.key("count").value(s.count);
    w.key("total_cells").value(static_cast<std::uint64_t>(s.total_cells));
    w.key("baseline").value(results.baseline);
    w.key("indices").begin_array();
    for (std::size_t k : s.indices) w.value(static_cast<std::uint64_t>(k));
    w.end_array();
    w.end_object();
    out += ",\"shard\":" + w.str();
  } else if (!results.baseline.empty()) {
    out += ",\"aggregate\":" + aggregate_json(cell_views(results),
                                              results.baseline);
  }
  out += '}';
  return out;
}

std::string merge_sharded_envelopes(
    const std::vector<std::string>& envelopes) {
  if (envelopes.empty()) merge_error("no shard envelopes given");

  std::string name, baseline;
  unsigned count = 0;
  std::size_t total_cells = 0;
  std::vector<std::string_view> merged;     // raw cell text by global index
  std::vector<CellView> views;              // parsed facts by global index
  std::vector<bool> seen_shard;

  for (std::size_t e = 0; e < envelopes.size(); ++e) {
    const std::string& text = envelopes[e];
    const std::string which = "envelope " + std::to_string(e);
    JsonValue doc;
    try {
      doc = JsonValue::parse(text);
    } catch (const JsonError& err) {
      merge_error(which + ": " + err.what());
    }
    const JsonValue* shard = doc.find("shard");
    if (!shard)
      merge_error(which + " has no \"shard\" block (not a --shard output?)");
    const unsigned idx =
        static_cast<unsigned>(shard->at("index").as_u64());
    const unsigned cnt =
        static_cast<unsigned>(shard->at("count").as_u64());
    const std::size_t total =
        static_cast<std::size_t>(shard->at("total_cells").as_u64());
    const std::string& base = shard->at("baseline").as_string();
    const std::string& nm = doc.at("name").as_string();

    if (e == 0) {
      name = nm;
      baseline = base;
      count = cnt;
      total_cells = total;
      if (count == 0) merge_error("shard count 0");
      merged.assign(total_cells, {});
      views.resize(total_cells);
      seen_shard.assign(count, false);
    } else if (nm != name || cnt != count || total != total_cells ||
               base != baseline) {
      merge_error(which + " ran a different grid (config '" + nm + "', " +
                  std::to_string(cnt) + " shards, " + std::to_string(total) +
                  " cells, baseline '" + base + "') than envelope 0 ('" +
                  name + "', " + std::to_string(count) + " shards, " +
                  std::to_string(total_cells) + " cells, baseline '" +
                  baseline + "')");
    }
    if (idx >= count) merge_error(which + ": shard index out of range");
    if (seen_shard[idx])
      merge_error("shard " + std::to_string(idx) + " given twice");
    seen_shard[idx] = true;

    // Raw element text is what gets re-emitted — byte fidelity — while the
    // parsed tree supplies the facts the aggregate recomputation needs.
    const std::vector<std::string_view> raws =
        raw_elements(raw_member(text, "results"));
    const std::vector<JsonValue>& cells = doc.at("results").array();
    const std::vector<JsonValue>& indices = shard->at("indices").array();
    if (raws.size() != indices.size() || cells.size() != indices.size())
      merge_error(which + ": " + std::to_string(raws.size()) +
                  " results but " + std::to_string(indices.size()) +
                  " shard indices");
    for (std::size_t j = 0; j < indices.size(); ++j) {
      const std::size_t k = static_cast<std::size_t>(indices[j].as_u64());
      if (k >= total_cells)
        merge_error(which + ": cell index " + std::to_string(k) +
                    " out of range");
      if (!merged[k].empty())
        merge_error("cell " + std::to_string(k) +
                    " appears in two shards (mismatched --shard runs?)");
      merged[k] = raws[j];
      const JsonValue& spec = cells[j].at("spec");
      views[k] = CellView{spec.at("system").as_string(),
                          static_cast<unsigned>(spec.at("cores").as_u64()),
                          spec.at("mechanism").as_string(),
                          spec.at("workload").as_string(),
                          cells[j].at("total_cycles").as_u64(),
                          cells[j].at("avg_ptw_latency").as_double()};
    }
  }

  if (envelopes.size() != count)
    merge_error(std::to_string(envelopes.size()) + " envelopes given for a " +
                std::to_string(count) + "-shard grid");
  for (std::size_t k = 0; k < merged.size(); ++k)
    if (merged[k].empty())
      merge_error("cell " + std::to_string(k) + " missing from every shard");

  std::string out =
      "{\"name\":\"" + JsonWriter::escape(name) + "\",\"results\":[";
  for (std::size_t k = 0; k < merged.size(); ++k) {
    if (k) out += ',';
    out.append(merged[k].data(), merged[k].size());
  }
  out += ']';
  if (!baseline.empty())
    out += ",\"aggregate\":" + aggregate_json(views, baseline);
  out += '}';
  return out;
}

std::string to_csv(const SweepResults& results) {
  return summary_table(results).to_csv();
}

}  // namespace ndp
