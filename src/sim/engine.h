// Multi-core trace-driven simulation engine.
//
// Cores are in-order with a bounded memory-op window: a core may have up to
// `System::mlp()` memory operations in flight (translation + data access are
// serial *within* an op — translation is on the critical path, the paper's
// premise — but independent ops overlap, as even simple NDP cores achieve
// with a handful of MSHRs). Cores are interleaved by a time-ordered queue,
// so every shared resource (DRAM banks, channel slots, mesh ingress, the
// CPU system's L3) sees near-causally ordered traffic from all cores, and
// contention effects are emergent.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/system.h"
#include "sim/profile.h"
#include "workloads/workload.h"

namespace ndp {

struct EngineConfig {
  std::uint64_t instructions_per_core = 300'000;
  std::uint64_t warmup_refs_per_core = 20'000;
  /// Pre-collected setup products of the trace (region layout + warm
  /// pages). Null: prepare() asks the trace itself, as always. Non-null —
  /// a Session sharing one collection across sweep cells — must equal
  /// TraceMaterial::of(trace) and outlive the engine.
  const TraceMaterial* material = nullptr;
};

struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t memrefs = 0;
  Cycle start = 0;  ///< first post-warmup issue
  Cycle end = 0;    ///< last completion
  std::uint64_t translation_cycles = 0;
  std::uint64_t data_cycles = 0;
  std::uint64_t gap_cycles = 0;
  std::uint64_t fault_cycles = 0;

  /// Measured wall time of this core's counted window. The engine
  /// guarantees end > start for every core of a completed run (a core that
  /// retires no post-warmup instructions is a diagnosed error from
  /// Engine::run(), not a silent zero that would poison geomean speedup
  /// tables); the guard here is only for default-constructed stats.
  Cycle cycles() const { return end > start ? end - start : 0; }
};

/// Identity of the run that produced a result. Filled by run_experiment()
/// so a serialized RunResult is self-describing without its RunSpec.
struct RunMeta {
  std::string system;
  /// Canonical mechanism spelling, parameters included ("ECH(ways=4)").
  std::string mechanism;
  /// Every resolved mechanism parameter (defaults applied), schema order,
  /// as (name, value-text) pairs — empty for unparameterized mechanisms.
  std::vector<std::pair<std::string, std::string>> mechanism_params;
  std::string workload;
  unsigned cores = 0;
  std::uint64_t instructions_per_core = 0;
  std::uint64_t seed = 0;
};

struct RunResult {
  RunMeta meta;
  std::vector<CoreStats> cores;
  Cycle total_cycles = 0;  ///< max per-core cycles: the run's wall time
  StatSet stats;           ///< merged component statistics
  /// Host-side self-profiling: wall ns per phase and deterministic engine
  /// op counters. Always collected (phase-boundary clock reads only);
  /// serialized only on request so default output stays byte-identical.
  HostProfile host_profile;
  HostCounters host;

  // Headline metrics (derived; see engine.cpp).
  double avg_ptw_latency = 0.0;       ///< cycles per walk (paper Fig. 4/6a)
  double translation_fraction = 0.0;  ///< share of busy cycles (Fig. 5/6b)
  double l1_tlb_miss_rate = 0.0;
  double l2_tlb_miss_rate = 0.0;
  double pte_access_share = 0.0;      ///< PTE share of memory accesses
  double ipc = 0.0;

  std::uint64_t total_instructions() const;
};

class Engine {
 public:
  /// Throws std::invalid_argument on a zero instruction budget — a run that
  /// can retire nothing must fail loudly, not feed 0-cycle cells into
  /// speedup geomeans.
  Engine(System& system, TraceSource& trace, EngineConfig cfg);

  /// Setup half of a run: install the trace's VM regions and populate the
  /// resident set (the install/prefault profile phases). Idempotent; run()
  /// calls it when the caller has not. Split out so callers measuring the
  /// event loop (perf smoke, profiling) can separate setup from simulation.
  void prepare();

  /// Declare the System already prepared — it was restored from a
  /// post-prefault PreparedImage, so install and prefault must not run
  /// again (and report 0 ns in the profile). Call before run().
  void mark_prepared() { prepared_ = true; }

  /// prepare() if needed, then warm up and run to the instruction budget.
  /// Throws std::runtime_error (diagnosed) if any core ends the run with no
  /// post-warmup instructions — see CoreStats::cycles().
  RunResult run();

 private:
  System& sys_;
  TraceSource& trace_;
  EngineConfig cfg_;
  HostProfile setup_profile_;  ///< install/prefault ns from prepare()
  bool prepared_ = false;
};

}  // namespace ndp
