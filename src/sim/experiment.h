// Experiment runner: one call = one (system, cores, mechanism, workload)
// cell of the paper's evaluation. Benches compose these into the figures.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/system.h"
#include "sim/engine.h"
#include "workloads/workload.h"

namespace ndp {

struct RunSpec {
  SystemKind system = SystemKind::kNdp;
  unsigned cores = 1;
  Mechanism mechanism = Mechanism::kRadix;
  WorkloadKind workload = WorkloadKind::kRND;
  std::uint64_t instructions_per_core = 0;  ///< 0 = default_instructions()
  std::uint64_t warmup_refs = 0;            ///< 0 = instructions/15
  double scale = 0;                         ///< 0 = WorkloadParams default
  std::uint64_t seed = 42;
  /// Ablation overrides, forwarded to SystemConfig.
  std::optional<bool> bypass_override;
  std::optional<std::vector<unsigned>> pwc_levels_override;
  std::optional<DramTiming> dram_override;
};

/// Per-core instruction budget: NDPAGE_INSTRS env override, else 150k.
/// (The paper simulates 500M instructions/core on Sniper; the shape-level
/// results reported in EXPERIMENTS.md are stable from a few hundred
/// thousand instructions once TLBs/caches are warm.)
std::uint64_t default_instructions();

/// Build the system + workload and run the engine.
RunResult run_experiment(const RunSpec& spec);

/// Cycles for each mechanism on one workload (shared spec otherwise), plus
/// speedups over Radix — one bar group of Figs. 12-14.
struct MechanismComparison {
  std::map<Mechanism, RunResult> results;
  std::map<Mechanism, double> speedup_over_radix;
};
MechanismComparison compare_mechanisms(const RunSpec& base,
                                       const std::vector<Mechanism>& mechs);

/// Geometric mean over positive values.
double geomean(const std::vector<double>& xs);

}  // namespace ndp
