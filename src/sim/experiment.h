// Experiment runner: one call = one (system, cores, mechanism, workload)
// cell of the paper's evaluation. Benches compose these into the figures;
// the `ndpsim` CLI (tools/ndpsim.cpp) exposes the same surface as flags.
//
// Mechanisms and workloads are selected by registry/string name, so designs
// registered outside core headers (see core/mechanism_registry.h) are
// first-class experiment subjects:
//
//   RunSpec spec = RunSpecBuilder()
//                      .system("ndp").cores(4)
//                      .mechanism("ndpage").workload("gups")
//                      .build();
//   RunResult r = run_experiment(spec);
//   std::string json = to_json(r, &spec);
//
// Cross-product sweeps expand into plain RunSpecs:
//
//   for (const RunSpec& s : sweep(base, {"radix", "ndpage"}, {"gups"}, {1, 4}))
//     ...
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/system.h"
#include "sim/engine.h"
#include "workloads/workload.h"

namespace ndp {

struct RunSpec {
  SystemKind system = SystemKind::kNdp;
  unsigned cores = 1;
  /// Built-in mechanism selector; ignored when `mechanism_name` is set.
  Mechanism mechanism = Mechanism::kRadix;
  /// Registry spec; wins over the enum when non-empty. May carry typed
  /// parameters — "ech(ways=4)" — resolved against the mechanism's schema;
  /// also how non-built-in registered mechanisms are run. The builder
  /// stores the canonical spelling here.
  std::string mechanism_name;
  WorkloadKind workload = WorkloadKind::kRND;
  /// Registry name/alias; wins over the enum when non-empty. This is how
  /// non-built-in registered workloads are run.
  std::string workload_name;
  std::uint64_t instructions_per_core = 0;  ///< 0 = default_instructions()
  std::uint64_t warmup_refs = 0;            ///< 0 = instructions/15
  double scale = 0;                         ///< 0 = WorkloadParams default
  std::uint64_t seed = 42;
  /// Ablation overrides, forwarded to SystemConfig verbatim.
  Overrides overrides;

  /// Canonical mechanism spelling, parameters included (resolves
  /// `mechanism_name` via the registry) — "Radix", "ECH(ways=4)".
  std::string mechanism_label() const;
  /// Canonical workload name (resolves `workload_name` via the registry).
  std::string workload_label() const;
};

/// Fluent construction with string-named selection. Name setters throw
/// std::invalid_argument on unknown names (listing what is known), so a CLI
/// or config front-end gets its error message for free.
class RunSpecBuilder {
 public:
  RunSpecBuilder() = default;
  explicit RunSpecBuilder(RunSpec base) : spec_(std::move(base)) {}

  RunSpecBuilder& system(SystemKind k);
  RunSpecBuilder& system(std::string_view name);  ///< "ndp" | "cpu"
  RunSpecBuilder& cores(unsigned n);
  RunSpecBuilder& mechanism(Mechanism m);
  /// Registry name/alias, optionally parameterized: "ndpage",
  /// "ech(ways=4,probes=2)". Validated against the schema immediately.
  RunSpecBuilder& mechanism(std::string_view name);
  RunSpecBuilder& workload(WorkloadKind k);
  RunSpecBuilder& workload(std::string_view name);  ///< name/suite alias
  RunSpecBuilder& instructions(std::uint64_t per_core);
  RunSpecBuilder& warmup(std::uint64_t refs);
  RunSpecBuilder& scale(double s);  ///< (0, 1]; 0 = workload default
  RunSpecBuilder& seed(std::uint64_t s);
  RunSpecBuilder& overrides(Overrides o);

  const RunSpec& spec() const { return spec_; }
  RunSpec build() const { return spec_; }

 private:
  RunSpec spec_;
};

/// Expand the cross-product (mechanisms x workloads x core counts) over
/// `base` into RunSpecs, in mechanism-major order. An empty axis keeps the
/// base's value for that axis. Throws std::invalid_argument on unknown
/// names.
std::vector<RunSpec> sweep(const RunSpec& base,
                           const std::vector<std::string>& mechanisms,
                           const std::vector<std::string>& workloads = {},
                           const std::vector<unsigned>& core_counts = {});

/// Per-core instruction budget: NDPAGE_INSTRS env override, else 150k.
/// (The paper simulates 500M instructions/core on Sniper; the shape-level
/// results reported in EXPERIMENTS.md are stable from a few hundred
/// thousand instructions once TLBs/caches are warm.)
std::uint64_t default_instructions();

/// Build the system + workload and run the engine. One-shot shim over the
/// Session run lifecycle (sim/session.h): a fresh Session with image
/// sharing disabled — identical results, no caching. Repeated runs should
/// hold a Session and call session.run(spec) instead.
RunResult run_experiment(const RunSpec& spec);

/// Cycles for each mechanism on one workload (shared spec otherwise), plus
/// speedups over a baseline — one bar group of Figs. 12-14. Keyed by
/// canonical mechanism label ("Radix", "ECH(ways=8)"), so parameterized
/// design points and registered non-built-ins compare like anything else.
struct MechanismComparison {
  std::string baseline;                 ///< canonical baseline label
  std::vector<std::string> mechanisms;  ///< run order, baseline first
  std::map<std::string, RunResult> results;
  std::map<std::string, double> speedup_over_baseline;
};
/// Runs the baseline plus every spec in `mechs` (registry names/aliases,
/// optionally parameterized — "ech(ways=8)"); duplicates of the baseline or
/// of earlier entries are run once. All cells share one Session, so the
/// system image is built once. Throws std::invalid_argument on unknown
/// names, like RunSpecBuilder::mechanism().
MechanismComparison compare_mechanisms(const RunSpec& base,
                                       const std::vector<std::string>& mechs,
                                       std::string_view baseline = "radix");

/// Geometric mean over positive values. Empty input or any non-positive
/// value yields 0.0 (a geometric mean is undefined there; 0.0 keeps sweep
/// aggregation total instead of UB on bad cells).
double geomean(const std::vector<double>& xs);

/// Serialize counters + averages: {"counters":{...},
/// "averages":{name:{mean,min,max,count}}}.
std::string to_json(const StatSet& stats);

class JsonWriter;
/// Emit one {"phases":{...},"total_ns":...,"counters":{...}} host-profile
/// object (shared by per-run and sweep-level serialization).
void write_host_profile(JsonWriter& w, const HostProfile& profile,
                        const HostCounters& host);

/// Serialize a run: headline metrics, per-core stats, full StatSet; when
/// `spec` is given, a "spec" object (system/cores/mechanism/workload/seed)
/// is included so a results file is self-describing. With
/// `include_host_profile` a "host_profile" object (wall ns per phase +
/// engine op counters) is appended — opt-in, so default documents stay
/// byte-identical run to run and job count to job count.
std::string to_json(const RunResult& r, const RunSpec* spec = nullptr,
                    bool include_host_profile = false);

}  // namespace ndp
