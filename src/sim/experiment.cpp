#include "sim/experiment.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace ndp {

std::uint64_t default_instructions() {
  if (const char* env = std::getenv("NDPAGE_INSTRS")) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 150'000;
}

RunResult run_experiment(const RunSpec& spec) {
  SystemConfig sc = spec.system == SystemKind::kNdp
                        ? SystemConfig::ndp(spec.cores, spec.mechanism)
                        : SystemConfig::cpu(spec.cores, spec.mechanism);
  sc.seed = spec.seed;
  sc.bypass_override = spec.bypass_override;
  sc.pwc_levels_override = spec.pwc_levels_override;
  sc.dram_override = spec.dram_override;
  System system(sc);

  WorkloadParams wp;
  wp.num_cores = spec.cores;
  if (spec.scale > 0) wp.scale = spec.scale;
  wp.seed = spec.seed;
  auto trace = make_workload(spec.workload, wp);

  EngineConfig ec;
  ec.instructions_per_core = spec.instructions_per_core
                                 ? spec.instructions_per_core
                                 : default_instructions();
  ec.warmup_refs_per_core =
      spec.warmup_refs ? spec.warmup_refs : ec.instructions_per_core / 15;

  Engine engine(system, *trace, ec);
  return engine.run();
}

MechanismComparison compare_mechanisms(const RunSpec& base,
                                       const std::vector<Mechanism>& mechs) {
  MechanismComparison out;
  RunSpec radix = base;
  radix.mechanism = Mechanism::kRadix;
  out.results.emplace(Mechanism::kRadix, run_experiment(radix));
  const double radix_cycles =
      static_cast<double>(out.results.at(Mechanism::kRadix).total_cycles);
  out.speedup_over_radix[Mechanism::kRadix] = 1.0;

  for (Mechanism m : mechs) {
    if (m == Mechanism::kRadix) continue;
    RunSpec s = base;
    s.mechanism = m;
    RunResult r = run_experiment(s);
    const double cycles = static_cast<double>(r.total_cycles);
    out.speedup_over_radix[m] = cycles > 0 ? radix_cycles / cycles : 0.0;
    out.results.emplace(m, std::move(r));
  }
  return out;
}

double geomean(const std::vector<double>& xs) {
  assert(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    assert(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace ndp
