#include "sim/experiment.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "common/json.h"
#include "sim/session.h"
#include "workloads/workload_registry.h"

namespace ndp {

std::string RunSpec::mechanism_label() const {
  return resolve_mechanism_spec(mechanism, mechanism_name).canonical;
}

std::string RunSpec::workload_label() const {
  return resolve_workload(workload, workload_name).name;
}

RunSpecBuilder& RunSpecBuilder::system(SystemKind k) {
  spec_.system = k;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::system(std::string_view name) {
  const auto k = system_kind_from_string(name);
  if (!k)
    throw std::invalid_argument("unknown system '" + std::string(name) +
                                "'; expected 'ndp' or 'cpu'");
  spec_.system = *k;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::cores(unsigned n) {
  if (n == 0) throw std::invalid_argument("cores must be >= 1");
  spec_.cores = n;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::mechanism(Mechanism m) {
  spec_.mechanism = m;
  spec_.mechanism_name.clear();
  return *this;
}

RunSpecBuilder& RunSpecBuilder::mechanism(std::string_view name) {
  // resolve() validates the full spec (name + parameters) and throws
  // std::out_of_range (listing registered names) on unknown mechanisms;
  // surface that as invalid_argument like the other name setters. Bad
  // parameters already arrive as invalid_argument.
  try {
    const MechanismSpec spec = MechanismRegistry::instance().resolve(name);
    spec_.mechanism_name = spec.canonical;
    if (const auto m = mechanism_from_string(spec.descriptor->name))
      spec_.mechanism = *m;
  } catch (const std::out_of_range& e) {
    throw std::invalid_argument(e.what());
  }
  return *this;
}

RunSpecBuilder& RunSpecBuilder::workload(WorkloadKind k) {
  spec_.workload = k;
  spec_.workload_name.clear();
  return *this;
}

RunSpecBuilder& RunSpecBuilder::workload(std::string_view name) {
  // Throws std::out_of_range (listing registered names) when unknown;
  // surface it as invalid_argument like the other name setters.
  try {
    spec_.workload_name = WorkloadRegistry::instance().at(name).name;
  } catch (const std::out_of_range& e) {
    throw std::invalid_argument(e.what());
  }
  if (const auto k = workload_from_string(name)) spec_.workload = *k;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::instructions(std::uint64_t per_core) {
  spec_.instructions_per_core = per_core;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::warmup(std::uint64_t refs) {
  spec_.warmup_refs = refs;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::scale(double s) {
  if (s < 0 || s > 1)
    throw std::invalid_argument(
        "scale must be in (0, 1] (0 = workload default)");
  spec_.scale = s;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::seed(std::uint64_t s) {
  spec_.seed = s;
  return *this;
}

RunSpecBuilder& RunSpecBuilder::overrides(Overrides o) {
  spec_.overrides = std::move(o);
  return *this;
}

std::vector<RunSpec> sweep(const RunSpec& base,
                           const std::vector<std::string>& mechanisms,
                           const std::vector<std::string>& workloads,
                           const std::vector<unsigned>& core_counts) {
  std::vector<RunSpec> out;
  // An empty axis contributes the base's value — one iteration.
  const std::size_t nm = mechanisms.empty() ? 1 : mechanisms.size();
  const std::size_t nw = workloads.empty() ? 1 : workloads.size();
  const std::size_t nc = core_counts.empty() ? 1 : core_counts.size();
  out.reserve(nm * nw * nc);
  for (std::size_t m = 0; m < nm; ++m)
    for (std::size_t w = 0; w < nw; ++w)
      for (std::size_t c = 0; c < nc; ++c) {
        RunSpecBuilder b(base);
        if (!mechanisms.empty()) b.mechanism(mechanisms[m]);
        if (!workloads.empty()) b.workload(workloads[w]);
        if (!core_counts.empty()) b.cores(core_counts[c]);
        out.push_back(b.build());
      }
  return out;
}

std::uint64_t default_instructions() {
  if (const char* env = std::getenv("NDPAGE_INSTRS")) {
    const auto v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 150'000;
}

RunResult run_experiment(const RunSpec& spec) {
  // One-shot: a fresh Session with sharing disabled is exactly the
  // historical build-everything-per-run path.
  SessionOptions opts;
  opts.share_images = false;
  return Session(opts).run(spec);
}

MechanismComparison compare_mechanisms(const RunSpec& base,
                                       const std::vector<std::string>& mechs,
                                       std::string_view baseline) {
  MechanismComparison out;
  Session session;  // all cells share one system image

  const RunSpec base_spec = RunSpecBuilder(base).mechanism(baseline).build();
  out.baseline = base_spec.mechanism_label();
  out.mechanisms.push_back(out.baseline);
  out.results.emplace(out.baseline, session.run(base_spec));
  const double baseline_cycles =
      static_cast<double>(out.results.at(out.baseline).total_cycles);
  out.speedup_over_baseline[out.baseline] = 1.0;

  for (const std::string& name : mechs) {
    const RunSpec s = RunSpecBuilder(base).mechanism(name).build();
    const std::string label = s.mechanism_label();
    if (out.results.count(label)) continue;
    RunResult r = session.run(s);
    const double cycles = static_cast<double>(r.total_cycles);
    out.speedup_over_baseline[label] =
        cycles > 0 ? baseline_cycles / cycles : 0.0;
    out.mechanisms.push_back(label);
    out.results.emplace(label, std::move(r));
  }
  return out;
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

namespace {

/// Emit a "mechanism_params" object with the resolved, typed parameter
/// values of `spec` — omitted entirely for unparameterized mechanisms, so
/// documents for the existing built-ins keep their exact shape.
void write_mechanism_params(JsonWriter& w, const MechanismSpec& spec) {
  if (spec.params.empty()) return;
  w.key("mechanism_params").begin_object();
  for (const auto& [name, value] : spec.params.entries()) {
    w.key(name);
    switch (value.type()) {
      case ParamType::kUInt: w.value(value.as_uint()); break;
      case ParamType::kDouble: w.value(value.as_double()); break;
      case ParamType::kBool: w.value(value.as_bool()); break;
    }
  }
  w.end_object();
}

void write_stats(JsonWriter& w, const StatSet& stats) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : stats.counters()) w.key(name).value(v);
  w.end_object();
  w.key("averages").begin_object();
  for (const auto& [name, a] : stats.averages()) {
    w.key(name).begin_object();
    w.key("mean").value(a.mean());
    w.key("min").value(a.min());
    w.key("max").value(a.max());
    w.key("count").value(a.count());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace

std::string to_json(const StatSet& stats) {
  JsonWriter w;
  write_stats(w, stats);
  return w.str();
}

void write_host_profile(JsonWriter& w, const HostProfile& profile,
                        const HostCounters& host) {
  w.begin_object();
  w.key("phases").begin_object();
  for (unsigned i = 0; i < kNumProfilePhases; ++i) {
    const auto p = static_cast<ProfilePhase>(i);
    w.key(std::string(to_string(p)) + "_ns").value(profile.ns(p));
  }
  w.end_object();
  w.key("total_ns").value(profile.total_ns());
  w.key("counters").begin_object();
  w.key("events").value(host.events);
  w.key("heap_pushes").value(host.heap_pushes);
  w.key("heap_peak").value(host.heap_peak);
  w.key("image_builds").value(host.image_builds);
  w.key("image_hits").value(host.image_hits);
  w.end_object();
  w.end_object();
}

std::string to_json(const RunResult& r, const RunSpec* spec,
                    bool include_host_profile) {
  JsonWriter w;
  w.begin_object();
  if (spec) {
    const MechanismSpec mech =
        resolve_mechanism_spec(spec->mechanism, spec->mechanism_name);
    w.key("spec").begin_object();
    w.key("system").value(to_string(spec->system));
    w.key("cores").value(spec->cores);
    w.key("mechanism").value(mech.canonical);
    write_mechanism_params(w, mech);
    w.key("workload").value(spec->workload_label());
    w.key("instructions_per_core")
        .value(spec->instructions_per_core ? spec->instructions_per_core
                                           : default_instructions());
    w.key("seed").value(spec->seed);
    if (spec->scale > 0) w.key("scale").value(spec->scale);
    if (spec->overrides.any()) {
      w.key("overrides").begin_object();
      if (spec->overrides.bypass)
        w.key("bypass").value(*spec->overrides.bypass);
      if (spec->overrides.pwc_levels) {
        w.key("pwc_levels").begin_array();
        for (unsigned l : *spec->overrides.pwc_levels) w.value(l);
        w.end_array();
      }
      if (spec->overrides.dram)
        w.key("dram").value(spec->overrides.dram->name);
      w.end_object();
    }
    w.end_object();
  } else if (!r.meta.mechanism.empty()) {
    w.key("spec").begin_object();
    w.key("system").value(r.meta.system);
    w.key("cores").value(r.meta.cores);
    w.key("mechanism").value(r.meta.mechanism);
    if (!r.meta.mechanism_params.empty()) {
      w.key("mechanism_params").begin_object();
      for (const auto& [name, value] : r.meta.mechanism_params)
        w.key(name).value(value);
      w.end_object();
    }
    w.key("workload").value(r.meta.workload);
    w.key("instructions_per_core").value(r.meta.instructions_per_core);
    w.key("seed").value(r.meta.seed);
    w.end_object();
  }
  w.key("total_cycles").value(static_cast<std::uint64_t>(r.total_cycles));
  w.key("total_instructions").value(r.total_instructions());
  w.key("ipc").value(r.ipc);
  w.key("avg_ptw_latency").value(r.avg_ptw_latency);
  w.key("translation_fraction").value(r.translation_fraction);
  w.key("l1_tlb_miss_rate").value(r.l1_tlb_miss_rate);
  w.key("l2_tlb_miss_rate").value(r.l2_tlb_miss_rate);
  w.key("pte_access_share").value(r.pte_access_share);
  w.key("cores").begin_array();
  for (const CoreStats& c : r.cores) {
    w.begin_object();
    w.key("instructions").value(c.instructions);
    w.key("memrefs").value(c.memrefs);
    w.key("cycles").value(static_cast<std::uint64_t>(c.cycles()));
    w.key("translation_cycles").value(c.translation_cycles);
    w.key("data_cycles").value(c.data_cycles);
    w.key("gap_cycles").value(c.gap_cycles);
    w.key("fault_cycles").value(c.fault_cycles);
    w.end_object();
  }
  w.end_array();
  w.key("stats");
  write_stats(w, r.stats);
  if (include_host_profile) {
    w.key("host_profile");
    write_host_profile(w, r.host_profile, r.host);
  }
  w.end_object();
  return w.str();
}

}  // namespace ndp
