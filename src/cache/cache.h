// Set-associative cache model (tags only — the simulator is trace driven and
// never stores data bytes).
//
// The model tracks, per line, which AccessClass filled it. That is how the
// paper's pollution analysis (Fig. 7) is measured: PTE fills evicting data
// lines show up as "pollution victims", and per-class hit/miss counters give
// the metadata vs normal-data miss-rate split.
//
// Storage is structure-of-arrays (the same layout as translate/tlb.h): the
// tag, LRU, dirty, class, and RRPV columns are parallel vectors, so the hit
// probe — the single hottest scan in the simulator — reads one contiguous
// run of eight tags (one host cache line) instead of striding across 24-byte
// line objects, and the replacement columns are only touched on a hit or
// fill. An empty way holds kInvalidTag in the tag column (a real tag is
// pa >> 6 of a physical address and never all-ones), which removes the
// per-way valid flag from the scan.
//
// Statistics are plain counters (the access path is the simulator's hottest
// loop); snapshot() materializes them into a named StatSet for reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace ndp {

enum class ReplPolicy : std::uint8_t { kLru, kRandom, kSrrip };

struct CacheConfig {
  std::string name = "L1D";
  std::uint64_t size_bytes = 32 * 1024;
  unsigned ways = 8;
  Cycle latency = 4;
  ReplPolicy repl = ReplPolicy::kLru;
};

/// Result of a lookup-and-fill access.
struct CacheOutcome {
  bool hit = false;
  bool evicted = false;              ///< a valid line was displaced on fill
  bool victim_dirty = false;         ///< displaced line needs write-back
  std::uint64_t victim_line = 0;     ///< line address of the displaced line
  AccessClass victim_class = AccessClass::kData;
};

/// Per-class hit/miss counters (index by AccessClass).
struct CacheCounters {
  std::uint64_t hit[2] = {0, 0};
  std::uint64_t miss[2] = {0, 0};
  std::uint64_t pollution_victims = 0;  ///< metadata fill evicted a data line

  std::uint64_t hits(AccessClass c) const { return hit[static_cast<int>(c)]; }
  std::uint64_t misses(AccessClass c) const { return miss[static_cast<int>(c)]; }
};

class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  /// Lookup `line`; on miss, fill it (possibly evicting). Write hits mark the
  /// line dirty. Statistics are recorded per AccessClass.
  CacheOutcome access(std::uint64_t line, AccessType type, AccessClass cls);

  /// Hot-path hit probe, inlined into the hierarchy's access loop: on a hit
  /// it updates replacement state + counters and returns true; on a miss it
  /// records nothing and returns false — the caller completes the access
  /// with fill_miss() (which reuses the tick this probe advanced).
  bool access_hit(std::uint64_t line, AccessType type, AccessClass cls) {
    const std::size_t base = base_of(line);
    ++tick_;
    for (unsigned w = 0; w < ways_; ++w) {
      if (tags_[base + w] != line) continue;
      lru_[base + w] = tick_;
      rrpv_[base + w] = 0;
      if (type == AccessType::kWrite) dirty_[base + w] = 1;
      ++counters_.hit[static_cast<int>(cls)];
      return true;
    }
    return false;
  }
  /// Miss half of access(): record the miss and fill (possibly evicting).
  /// Only valid immediately after an access_hit() that returned false.
  CacheOutcome fill_miss(std::uint64_t line, AccessType type, AccessClass cls);
  /// Tag probe with no state change.
  bool probe(std::uint64_t line) const;
  /// Drop a line if present (returns true if it was dirty).
  bool invalidate(std::uint64_t line);

  const CacheConfig& config() const { return cfg_; }
  unsigned num_sets() const { return num_sets_; }
  const CacheCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = CacheCounters{}; }
  /// Named statistics snapshot ("cache.hit.data", "cache.miss.meta", ...).
  StatSet snapshot() const;

  /// Miss rate restricted to one access class (Fig. 7's quantities).
  double miss_rate(AccessClass cls) const;
  /// Fraction of currently valid lines filled by metadata (pollution level).
  double metadata_occupancy() const;

 private:
  /// Empty-way marker in the tag column: a tag is a 64 B line address
  /// (pa >> 6) and physical memory tops out far below 2^64.
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

  std::size_t base_of(std::uint64_t line) const {
    return static_cast<std::size_t>(line % num_sets_) * ways_;
  }
  unsigned pick_victim(std::size_t base);

  CacheConfig cfg_;
  unsigned num_sets_;
  unsigned ways_;
  std::vector<std::uint64_t> tags_;   ///< num_sets_ x ways, row-major columns
  std::vector<std::uint64_t> lru_;    ///< higher == more recent
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint8_t> cls_;     ///< AccessClass that filled the line
  std::vector<std::uint8_t> rrpv_;    ///< SRRIP re-reference prediction value
  std::uint64_t tick_ = 0;   ///< LRU clock
  Rng rng_;                  ///< for kRandom replacement
  CacheCounters counters_;
};

}  // namespace ndp
