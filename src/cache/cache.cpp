#include "cache/cache.h"

#include <cassert>

namespace ndp {

Cache::Cache(CacheConfig cfg) : cfg_(std::move(cfg)), rng_(0xCACE5EEDull) {
  assert(cfg_.ways > 0);
  const std::uint64_t num_lines = cfg_.size_bytes / kCacheLineSize;
  assert(num_lines % cfg_.ways == 0);
  num_sets_ = static_cast<unsigned>(num_lines / cfg_.ways);
  assert(num_sets_ > 0);
  lines_.resize(num_lines);
}

bool Cache::probe(std::uint64_t line) const {
  const unsigned set = set_of(line);
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    const Line& l = lines_[static_cast<std::size_t>(set) * cfg_.ways + w];
    if (l.valid && l.tag == line) return true;
  }
  return false;
}

bool Cache::invalidate(std::uint64_t line) {
  const unsigned set = set_of(line);
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Line& l = lines_[static_cast<std::size_t>(set) * cfg_.ways + w];
    if (l.valid && l.tag == line) {
      l.valid = false;
      return l.dirty;
    }
  }
  return false;
}

unsigned Cache::pick_victim(unsigned set) {
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  // Invalid way first, for every policy.
  for (unsigned w = 0; w < cfg_.ways; ++w)
    if (!base[w].valid) return w;

  switch (cfg_.repl) {
    case ReplPolicy::kRandom:
      return static_cast<unsigned>(rng_.below(cfg_.ways));
    case ReplPolicy::kSrrip: {
      // Find a line with RRPV == max (3); age everyone until one appears.
      while (true) {
        for (unsigned w = 0; w < cfg_.ways; ++w)
          if (base[w].rrpv >= 3) return w;
        for (unsigned w = 0; w < cfg_.ways; ++w) ++base[w].rrpv;
      }
    }
    case ReplPolicy::kLru:
    default: {
      unsigned victim = 0;
      for (unsigned w = 1; w < cfg_.ways; ++w)
        if (base[w].lru < base[victim].lru) victim = w;
      return victim;
    }
  }
}

CacheOutcome Cache::access(std::uint64_t line, AccessType type,
                           AccessClass cls) {
  if (access_hit(line, type, cls)) return CacheOutcome{.hit = true};
  return fill_miss(line, type, cls);
}

CacheOutcome Cache::fill_miss(std::uint64_t line, AccessType type,
                              AccessClass cls) {
  const unsigned set = set_of(line);
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  ++counters_.miss[static_cast<int>(cls)];

  const unsigned w = pick_victim(set);
  Line& victim = base[w];
  CacheOutcome out;
  out.hit = false;
  if (victim.valid) {
    out.evicted = true;
    out.victim_dirty = victim.dirty;
    out.victim_line = victim.tag;
    out.victim_class = victim.cls;
    // Pollution accounting: a metadata fill displacing a data line is the
    // effect the paper's bypass mechanism removes.
    if (cls == AccessClass::kMetadata && victim.cls == AccessClass::kData)
      ++counters_.pollution_victims;
  }
  victim.tag = line;
  victim.valid = true;
  victim.dirty = (type == AccessType::kWrite);
  victim.cls = cls;
  victim.lru = tick_;
  victim.rrpv = 2;  // SRRIP: insert at long re-reference
  return out;
}

StatSet Cache::snapshot() const {
  StatSet s;
  s.inc("hit.data", counters_.hit[0]);
  s.inc("hit.meta", counters_.hit[1]);
  s.inc("miss.data", counters_.miss[0]);
  s.inc("miss.meta", counters_.miss[1]);
  s.inc("pollution_victims", counters_.pollution_victims);
  return s;
}

double Cache::miss_rate(AccessClass cls) const {
  const double h = static_cast<double>(counters_.hits(cls));
  const double m = static_cast<double>(counters_.misses(cls));
  return (h + m) > 0 ? m / (h + m) : 0.0;
}

double Cache::metadata_occupancy() const {
  std::uint64_t valid = 0, meta = 0;
  for (const Line& l : lines_) {
    if (!l.valid) continue;
    ++valid;
    if (l.cls == AccessClass::kMetadata) ++meta;
  }
  return valid ? static_cast<double>(meta) / static_cast<double>(valid) : 0.0;
}

}  // namespace ndp
