#include "cache/cache.h"

#include <cassert>

namespace ndp {

Cache::Cache(CacheConfig cfg) : cfg_(std::move(cfg)), rng_(0xCACE5EEDull) {
  assert(cfg_.ways > 0);
  const std::uint64_t num_lines = cfg_.size_bytes / kCacheLineSize;
  assert(num_lines % cfg_.ways == 0);
  num_sets_ = static_cast<unsigned>(num_lines / cfg_.ways);
  assert(num_sets_ > 0);
  ways_ = cfg_.ways;
  tags_.assign(num_lines, kInvalidTag);
  lru_.assign(num_lines, 0);
  dirty_.assign(num_lines, 0);
  cls_.assign(num_lines, static_cast<std::uint8_t>(AccessClass::kData));
  rrpv_.assign(num_lines, 3);
}

bool Cache::probe(std::uint64_t line) const {
  const std::size_t base = base_of(line);
  for (unsigned w = 0; w < ways_; ++w)
    if (tags_[base + w] == line) return true;
  return false;
}

bool Cache::invalidate(std::uint64_t line) {
  const std::size_t base = base_of(line);
  for (unsigned w = 0; w < ways_; ++w) {
    if (tags_[base + w] == line) {
      tags_[base + w] = kInvalidTag;
      return dirty_[base + w] != 0;
    }
  }
  return false;
}

unsigned Cache::pick_victim(std::size_t base) {
  // Invalid way first, for every policy.
  for (unsigned w = 0; w < ways_; ++w)
    if (tags_[base + w] == kInvalidTag) return w;

  switch (cfg_.repl) {
    case ReplPolicy::kRandom:
      return static_cast<unsigned>(rng_.below(ways_));
    case ReplPolicy::kSrrip: {
      // Find a line with RRPV == max (3); age everyone until one appears.
      while (true) {
        for (unsigned w = 0; w < ways_; ++w)
          if (rrpv_[base + w] >= 3) return w;
        for (unsigned w = 0; w < ways_; ++w) ++rrpv_[base + w];
      }
    }
    case ReplPolicy::kLru:
    default: {
      unsigned victim = 0;
      for (unsigned w = 1; w < ways_; ++w)
        if (lru_[base + w] < lru_[base + victim]) victim = w;
      return victim;
    }
  }
}

CacheOutcome Cache::access(std::uint64_t line, AccessType type,
                           AccessClass cls) {
  if (access_hit(line, type, cls)) return CacheOutcome{.hit = true};
  return fill_miss(line, type, cls);
}

CacheOutcome Cache::fill_miss(std::uint64_t line, AccessType type,
                              AccessClass cls) {
  const std::size_t base = base_of(line);
  ++counters_.miss[static_cast<int>(cls)];

  const std::size_t v = base + pick_victim(base);
  CacheOutcome out;
  out.hit = false;
  if (tags_[v] != kInvalidTag) {
    out.evicted = true;
    out.victim_dirty = dirty_[v] != 0;
    out.victim_line = tags_[v];
    out.victim_class = static_cast<AccessClass>(cls_[v]);
    // Pollution accounting: a metadata fill displacing a data line is the
    // effect the paper's bypass mechanism removes.
    if (cls == AccessClass::kMetadata && out.victim_class == AccessClass::kData)
      ++counters_.pollution_victims;
  }
  tags_[v] = line;
  dirty_[v] = (type == AccessType::kWrite) ? 1 : 0;
  cls_[v] = static_cast<std::uint8_t>(cls);
  lru_[v] = tick_;
  rrpv_[v] = 2;  // SRRIP: insert at long re-reference
  return out;
}

StatSet Cache::snapshot() const {
  StatSet s;
  s.inc("hit.data", counters_.hit[0]);
  s.inc("hit.meta", counters_.hit[1]);
  s.inc("miss.data", counters_.miss[0]);
  s.inc("miss.meta", counters_.miss[1]);
  s.inc("pollution_victims", counters_.pollution_victims);
  return s;
}

double Cache::miss_rate(AccessClass cls) const {
  const double h = static_cast<double>(counters_.hits(cls));
  const double m = static_cast<double>(counters_.misses(cls));
  return (h + m) > 0 ? m / (h + m) : 0.0;
}

double Cache::metadata_occupancy() const {
  std::uint64_t valid = 0, meta = 0;
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] == kInvalidTag) continue;
    ++valid;
    if (static_cast<AccessClass>(cls_[i]) == AccessClass::kMetadata) ++meta;
  }
  return valid ? static_cast<double>(meta) / static_cast<double>(valid) : 0.0;
}

}  // namespace ndp
