#include "cache/hierarchy.h"

#include <cassert>
#include <string>

namespace ndp {

MemorySystemConfig MemorySystemConfig::ndp(unsigned cores) {
  MemorySystemConfig cfg;
  cfg.num_cores = cores;
  cfg.l1 = CacheConfig{.name = "L1D", .size_bytes = 32 * 1024, .ways = 8,
                       .latency = 4, .repl = ReplPolicy::kLru};
  cfg.l2.reset();
  cfg.l3.reset();
  cfg.dram = DramTiming::hbm2();
  cfg.mesh_hop_latency = 4;
  return cfg;
}

MemorySystemConfig MemorySystemConfig::cpu(unsigned cores) {
  MemorySystemConfig cfg;
  cfg.num_cores = cores;
  cfg.l1 = CacheConfig{.name = "L1D", .size_bytes = 32 * 1024, .ways = 8,
                       .latency = 4, .repl = ReplPolicy::kLru};
  cfg.l2 = CacheConfig{.name = "L2", .size_bytes = 512 * 1024, .ways = 16,
                       .latency = 16, .repl = ReplPolicy::kLru};
  cfg.l3 = CacheConfig{.name = "L3", .size_bytes = 2 * 1024 * 1024, .ways = 16,
                       .latency = 35, .repl = ReplPolicy::kLru};
  cfg.dram = DramTiming::ddr4_2400();
  cfg.mesh_hop_latency = 4;
  return cfg;
}

MeshConfig MemorySystemConfig::mesh() const {
  return MeshConfig{.num_cores = num_cores,
                    .num_mem_endpoints = dram.channels,
                    .hop_latency = mesh_hop_latency,
                    .ingress_slot = 1};
}

MemorySystem::MemorySystem(const MemorySystemConfig& cfg,
                           const MeshTable* shared_mesh)
    : cfg_(cfg),
      mesh_(shared_mesh ? Mesh(cfg.mesh(), *shared_mesh) : Mesh(cfg.mesh())),
      dram_(cfg.dram) {
  assert(cfg_.num_cores > 0);
  for (unsigned c = 0; c < cfg_.num_cores; ++c) {
    CacheConfig l1c = cfg_.l1;
    l1c.name = "L1D." + std::to_string(c);
    l1_.push_back(std::make_unique<Cache>(l1c));
    if (cfg_.l2) {
      CacheConfig l2c = *cfg_.l2;
      l2c.name = "L2." + std::to_string(c);
      l2_.push_back(std::make_unique<Cache>(l2c));
    }
  }
  if (cfg_.l3) {
    CacheConfig l3c = *cfg_.l3;
    l3c.size_bytes *= cfg_.num_cores;  // Table I: 2 MB per core, shared
    l3_ = std::make_unique<Cache>(l3c);
  }
}

void MemorySystem::write_back(Cycle now, unsigned core,
                              std::uint64_t victim_line, AccessClass cls) {
  // Dirty victims are drained straight to DRAM (fire-and-forget): they
  // consume channel/bank time — so write-back traffic does contend with
  // demand traffic — but never sit on the requester's critical path.
  const PhysAddr pa = victim_line << kCacheLineShift;
  const unsigned ep = dram_.channel_of(pa);
  const Cycle arrive = mesh_.to_memory(now, core, ep);
  dram_.access(arrive, pa, AccessType::kWrite, cls);
  ++counters_.writebacks;
}

MemAccessResult MemorySystem::dram_round_trip(Cycle now, unsigned core,
                                              PhysAddr pa, AccessType type,
                                              AccessClass cls) {
  const unsigned ep = dram_.channel_of(pa);
  const Cycle arrive = mesh_.to_memory(now, core, ep);
  const DramResult dr = dram_.access(arrive, pa, type, cls);
  const Cycle back = mesh_.from_memory(dr.finish, ep, core);
  return MemAccessResult{back, ServedBy::kDram};
}

MemAccessResult MemorySystem::access(Cycle now, unsigned core, PhysAddr pa,
                                     AccessType type, AccessClass cls,
                                     bool bypass_caches) {
  assert(core < cfg_.num_cores);
  ++counters_.access;
  if (cls == AccessClass::kMetadata) ++counters_.access_meta;

  if (bypass_caches) {
    ++counters_.bypassed;
    ++counters_.served_dram;
    return dram_round_trip(now, core, pa, type, cls);
  }

  const std::uint64_t line = line_of(pa);
  Cycle t = now;

  // L1 (private). The hit probe is inlined (cache.h) — the overwhelmingly
  // common outcome pays no out-of-line call and builds no CacheOutcome.
  Cache& l1 = *l1_[core];
  t += l1.config().latency;
  if (l1.access_hit(line, type, cls)) {
    ++counters_.served_l1;
    return MemAccessResult{t, ServedBy::kL1};
  }
  CacheOutcome o1 = l1.fill_miss(line, type, cls);
  if (o1.evicted && o1.victim_dirty) write_back(t, core, o1.victim_line, o1.victim_class);

  // L2 (private, CPU system only).
  if (!l2_.empty()) {
    Cache& l2 = *l2_[core];
    t += l2.config().latency;
    if (l2.access_hit(line, type, cls)) {
      ++counters_.served_l2;
      return MemAccessResult{t, ServedBy::kL2};
    }
    CacheOutcome o2 = l2.fill_miss(line, type, cls);
    if (o2.evicted && o2.victim_dirty) write_back(t, core, o2.victim_line, o2.victim_class);
  }

  // L3 (shared, CPU system only).
  if (l3_) {
    t += l3_->config().latency;
    if (l3_->access_hit(line, type, cls)) {
      ++counters_.served_l3;
      return MemAccessResult{t, ServedBy::kL3};
    }
    CacheOutcome o3 = l3_->fill_miss(line, type, cls);
    if (o3.evicted && o3.victim_dirty) write_back(t, core, o3.victim_line, o3.victim_class);
  }

  ++counters_.served_dram;
  MemAccessResult r = dram_round_trip(t, core, pa, type, cls);
  return r;
}

void MemorySystem::reset_stats() {
  counters_ = Counters{};
  for (auto& c : l1_) c->reset_counters();
  for (auto& c : l2_) c->reset_counters();
  if (l3_) l3_->reset_counters();
  dram_.reset_counters();
  mesh_.reset_counters();
}

StatSet MemorySystem::collect_stats() const {
  StatSet out;
  out.inc("mem.access", counters_.access);
  out.inc("mem.access.meta", counters_.access_meta);
  out.inc("mem.bypassed", counters_.bypassed);
  out.inc("mem.served.l1", counters_.served_l1);
  out.inc("mem.served.l2", counters_.served_l2);
  out.inc("mem.served.l3", counters_.served_l3);
  out.inc("mem.served.dram", counters_.served_dram);
  out.inc("mem.writeback", counters_.writebacks);
  auto add_all = [&out](const StatSet& s, const std::string& prefix) {
    for (const auto& [k, v] : s.counters()) out.inc(prefix + "." + k, v);
    for (const auto& [k, a] : s.averages()) out.merge_average(prefix + "." + k, a);
  };
  for (unsigned c = 0; c < cfg_.num_cores; ++c)
    add_all(l1_[c]->snapshot(), "l1");
  for (const auto& l2 : l2_) add_all(l2->snapshot(), "l2");
  if (l3_) add_all(l3_->snapshot(), "l3");
  add_all(dram_.snapshot(), "dram");
  add_all(mesh_.snapshot(), "noc");
  return out;
}

}  // namespace ndp
