// Memory-system composition: private caches -> (shared L3) -> mesh -> DRAM.
//
// Two instantiations reproduce Table I of the paper:
//   * CPU system:  per-core L1D (32 KB) + L2 (512 KB), shared L3 (2 MB/core),
//                  DDR4-2400 behind memory-controller mesh endpoints.
//   * NDP system:  per-core L1D only, HBM2 vaults reached over the
//                  logic-layer mesh (4-cycle hops).
//
// The `bypass_caches` flag on access() is the hardware half of NDPage's
// metadata-bypass mechanism (paper §V-A): the request skips every cache
// level (no lookup, no fill) and goes straight over the NoC to DRAM.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.h"
#include "common/stats.h"
#include "common/types.h"
#include "dram/dram.h"
#include "noc/mesh.h"

namespace ndp {

struct MemorySystemConfig {
  unsigned num_cores = 1;
  CacheConfig l1;
  std::optional<CacheConfig> l2;  ///< private per-core (CPU system only)
  std::optional<CacheConfig> l3;  ///< shared; size_bytes is *per core*
  DramTiming dram = DramTiming::hbm2();
  Cycle mesh_hop_latency = 4;

  /// NDP system per Table I: shallow L1 only, HBM2.
  static MemorySystemConfig ndp(unsigned cores);
  /// CPU system per Table I: three-level hierarchy, DDR4-2400.
  static MemorySystemConfig cpu(unsigned cores);

  /// The NoC configuration this memory system instantiates (endpoints
  /// follow the DRAM channel count) — what Mesh::precompute() keys on.
  MeshConfig mesh() const;
};

/// Where a request was finally served from (for statistics).
enum class ServedBy : std::uint8_t { kL1, kL2, kL3, kDram };

struct MemAccessResult {
  Cycle finish = 0;
  ServedBy served_by = ServedBy::kDram;
};

class MemorySystem {
 public:
  /// `shared_mesh`: precomputed routing tables to adopt (must match the
  /// config's tile counts) — a Session shares one across the Systems of a
  /// sweep. Null computes them here, as always.
  explicit MemorySystem(const MemorySystemConfig& cfg,
                        const MeshTable* shared_mesh = nullptr);

  /// One full memory access for a 64 B line containing `pa`, issued by
  /// `core` at `now`. With bypass_caches the request goes NoC -> DRAM
  /// directly and allocates nowhere.
  MemAccessResult access(Cycle now, unsigned core, PhysAddr pa,
                         AccessType type, AccessClass cls,
                         bool bypass_caches = false);

  struct Counters {
    std::uint64_t access = 0, access_meta = 0, bypassed = 0;
    std::uint64_t served_l1 = 0, served_l2 = 0, served_l3 = 0, served_dram = 0;
    std::uint64_t writebacks = 0;
  };

  Cache& l1(unsigned core) { return *l1_[core]; }
  const Cache& l1(unsigned core) const { return *l1_[core]; }
  Cache* l2(unsigned core) { return l2_.empty() ? nullptr : l2_[core].get(); }
  Cache* l3() { return l3_.get(); }
  Dram& dram() { return dram_; }
  const Dram& dram() const { return dram_; }
  Mesh& mesh() { return mesh_; }
  const MemorySystemConfig& config() const { return cfg_; }
  const Counters& counters() const { return counters_; }

  /// Aggregate of every component's StatSet plus this object's counters
  /// (prefixed per component) — what the experiment runner snapshots.
  StatSet collect_stats() const;
  /// Clear all statistics (timing/tag state is kept) — used after warmup.
  void reset_stats();

 private:
  MemAccessResult dram_round_trip(Cycle now, unsigned core, PhysAddr pa,
                                  AccessType type, AccessClass cls);
  void write_back(Cycle now, unsigned core, std::uint64_t victim_line,
                  AccessClass cls);

  MemorySystemConfig cfg_;
  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<std::unique_ptr<Cache>> l2_;
  std::unique_ptr<Cache> l3_;
  Mesh mesh_;
  Dram dram_;
  Counters counters_;
};

}  // namespace ndp
