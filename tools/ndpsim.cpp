// ndpsim — config-driven front-end for the NDPage simulator.
//
// Every cell of the paper's evaluation (and any registered custom mechanism
// or workload) is runnable from flags, no bench binary required:
//
//   ndpsim --system=ndp --cores=4 --mechanism=ndpage --workload=gups
//   ndpsim --mechanism=radix,ndpage --workload=gups,pr --cores=1,4
//          --json=sweep.json
//   ndpsim --mechanism='ech(ways=4,probes=2),ech(ways=8)' --workload=gups
//   ndpsim --list-mechanisms
//
// Comma-separated --mechanism/--workload/--cores values expand into a
// cross-product sweep (mechanism-major order). Results print as a table plus
// per-component stats; --json writes machine-readable results ('-' = stdout).
//
// Whole experiment grids live in JSON config files (see experiments/ and
// src/sim/run_config.h) and run host-parallel — cells are independent, and
// results are deterministic regardless of the job count:
//
//   ndpsim --config experiments/fig06_core_scaling.json --jobs 4
//
// Grids also run resident (`--serve`: a daemon answering JSON-lines run/
// stats requests over TCP or stdio, with one warm Session shared across
// requests — drive it with `--client`) and distributed (`--shard i/N` runs
// one deterministic slice; `sweep_merge` recombines the slices into the
// document a single run would have written, byte for byte).
//
// Exit codes: 0 success, 1 run-time failure, 2 bad flags/usage, 3 a broken
// experiment description (config parse/validation, unknown names).
// Diagnostics go to stderr; stdout carries only results.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "common/table.h"
#include "fleet/coordinator.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/run_config.h"
#include "sim/sweep_runner.h"
#include "workloads/workload_registry.h"

using namespace ndp;

namespace {

// Exit-code policy (also documented in usage()): scripts — CI in
// particular — branch on whether a failure is retryable (runtime), a
// wrong invocation, or a broken checked-in experiment description.
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitConfig = 3;

int usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "config-driven runs:\n"
      "  --config=FILE            run a JSON experiment description\n"
      "                           (see experiments/; selection and run-\n"
      "                           parameter flags then belong in the file)\n"
      "  --jobs=N                 execute sweep cells across N host threads\n"
      "                           (0 = all cores; results are identical\n"
      "                           whatever N is; default 1)\n"
      "  --fresh-systems          build every cell's system from scratch\n"
      "                           instead of restoring the session-shared\n"
      "                           image (results are identical; this is the\n"
      "                           A/B opt-out, see README)\n"
      "  --image-store=DIR        persist post-boot and post-prefault\n"
      "                           snapshots in DIR so a warm re-run (batch\n"
      "                           or daemon restart) skips boot, install,\n"
      "                           and prefault; results are byte-identical\n"
      "                           cold, warm, or disabled (wins over a\n"
      "                           config's \"image_store\")\n"
      "  --shard=I/N              run only shard I of the config's grid\n"
      "                           split N ways (cell k belongs to shard\n"
      "                           k %% N); recombine the N JSON envelopes\n"
      "                           with sweep_merge for the byte-identical\n"
      "                           single-run document\n"
      "\n"
      "serving (see README \"Serving mode\"):\n"
      "  --serve                  run as a resident daemon answering\n"
      "                           JSON-lines requests (run/status/stats/\n"
      "                           cancel/shutdown) over one warm Session\n"
      "  --port=P                 daemon TCP port (0 = kernel-assigned,\n"
      "                           printed to stderr; default 0)\n"
      "  --stdio                  serve one connection on stdin/stdout\n"
      "                           instead of TCP\n"
      "  --max-conns=N            concurrent connection limit (default 16)\n"
      "  --idle-timeout=MS        close a connection idle this long\n"
      "  --request-timeout=MS     cancel a run running longer than this\n"
      "  --client=[HOST:]PORT     drive a daemon: submit --config as a run\n"
      "                           request and write the streamed envelope\n"
      "                           (byte-identical to a batch run) to --json\n"
      "  --op=run|stats|status|metrics|shutdown\n"
      "                           client request kind (default run; metrics\n"
      "                           prints the daemon's Prometheus exposition)\n"
      "  --connect-retries=N      retry a refused --client connect N times\n"
      "                           with exponential backoff (default 0)\n"
      "  --no-cache               ask a fleet coordinator to bypass its\n"
      "                           result cache for this run request\n"
      "\n"
      "fleet mode (see README \"Fleet mode\"):\n"
      "  --fleet                  run as a coordinator that shards each run\n"
      "                           request across worker daemons (--shard\n"
      "                           semantics on the wire), merges the shard\n"
      "                           envelopes byte-identically, fails shards\n"
      "                           over when a worker dies, and caches\n"
      "                           results by config digest\n"
      "  --worker=HOST:PORT,...   the worker daemons (each `ndpsim --serve`)\n"
      "  --fleet-config=FILE      JSON fleet description (workers, probe\n"
      "                           cadence, backoff, cache size; flags win)\n"
      "  --fleet-cache=on|off     coordinator result cache (default on)\n"
      "                           (--port/--max-conns/--idle-timeout/\n"
      "                           --request-timeout/--jobs apply here too)\n"
      "\n"
      "observability (see README \"Observability\"):\n"
      "  --log-level=LEVEL        trace|debug|info|warn|error|off (default\n"
      "                           info; the NDPSIM_LOG env variable sets the\n"
      "                           same, flags win)\n"
      "  --log-format=text|json   structured log line format (default text)\n"
      "  --metrics-dump=PATH      write the process metrics as Prometheus\n"
      "                           text exposition on exit ('-' = stdout)\n"
      "  --trace-out=FILE         record a Chrome trace-event JSON timeline\n"
      "                           (host phases, sweep cells, serve requests;\n"
      "                           open in Perfetto or chrome://tracing)\n"
      "\n"
      "selection (comma-separated values expand into a sweep):\n"
      "  --system=ndp|cpu         simulated system (default ndp)\n"
      "  --cores=N[,N...]         core counts (default 4)\n"
      "  --mechanism=SPEC[,...]   translation mechanisms (default ndpage;\n"
      "                           any registered name or alias, optionally\n"
      "                           parameterized: 'ech(ways=4,probes=2)';\n"
      "                           --list-mechanisms shows each schema)\n"
      "  --workload=NAME[,...]    workloads (default gups; any registered\n"
      "                           name or alias)\n"
      "\n"
      "run parameters:\n"
      "  --instructions=N         per-core instruction budget\n"
      "                           (default: NDPAGE_INSTRS env, else 150000)\n"
      "  --warmup=N               warmup refs/core (default instructions/15)\n"
      "  --scale=F                dataset scale fraction (default 0.75)\n"
      "  --seed=N                 RNG seed (default 42)\n"
      "\n"
      "ablation overrides:\n"
      "  --bypass=on|off          force metadata cache bypass\n"
      "  --pwc-levels=4,3|none    replace the mechanism's PWC level set\n"
      "\n"
      "output:\n"
      "  --json=PATH              write results as JSON ('-' = stdout)\n"
      "  --csv=PATH               write the summary table as CSV\n"
      "                           ('-' = stdout)\n"
      "  --baseline=NAME          aggregate speedups vs this mechanism\n"
      "  --stats                  dump every stat counter, not just the\n"
      "                           per-component summary\n"
      "  --profile                print host-side self-profiling (wall time\n"
      "                           per run phase, engine op counters,\n"
      "                           cells/sec) and include a host_profile\n"
      "                           block in JSON output\n"
      "  --list-systems           list simulated systems and exit\n"
      "  --list-mechanisms        list registered mechanisms and exit\n"
      "  --list-workloads         list registered workloads and exit\n"
      "  --help                   this text\n"
      "\n"
      "exit codes: 0 ok, 1 run-time failure, 2 bad flags/usage, 3 broken\n"
      "experiment description (config parse or validation errors)\n",
      argv0);
  return code;
}

/// Every flag ndpsim knows, used for the unknown-flag suggestion path. The
/// bool says whether the flag takes a value (space form without one is a
/// "requires a value" error, not an unknown flag).
struct KnownFlag {
  const char* name;
  bool takes_value;
};
constexpr KnownFlag kKnownFlags[] = {
    {"--config", true},        {"--jobs", true},
    {"--fresh-systems", false}, {"--shard", true},
    {"--image-store", true},
    {"--serve", false},        {"--port", true},
    {"--stdio", false},        {"--max-conns", true},
    {"--idle-timeout", true},  {"--request-timeout", true},
    {"--client", true},        {"--op", true},
    {"--connect-retries", true}, {"--no-cache", false},
    {"--fleet", false},        {"--worker", true},
    {"--fleet-config", true},  {"--fleet-cache", true},
    {"--log-level", true},     {"--log-format", true},
    {"--metrics-dump", true},  {"--trace-out", true},
    {"--system", true},
    {"--cores", true},         {"--mechanism", true},
    {"--workload", true},      {"--instructions", true},
    {"--warmup", true},        {"--scale", true},
    {"--seed", true},          {"--bypass", true},
    {"--pwc-levels", true},    {"--json", true},
    {"--csv", true},           {"--baseline", true},
    {"--stats", false},        {"--profile", false},
    {"--list-systems", false}, {"--list-mechanisms", false},
    {"--list-workloads", false}, {"--help", false},
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Like split_csv, but commas inside parentheses don't split — so
/// --mechanism='ech(ways=4,probes=2),radix' yields two specs.
std::vector<std::string> split_specs(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && s[i] == '(') ++depth;
    if (i < s.size() && s[i] == ')' && depth > 0) --depth;
    if (i == s.size() || (s[i] == ',' && depth == 0)) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

void list_systems() {
  // The two simulated platforms of the paper's Table I. Unlike mechanisms
  // and workloads these are a closed set (SystemKind), so the catalogue
  // lives here rather than in a registry.
  Table t({"name", "memory system", "summary"});
  t.add_row({"ndp", "per-core L1D, HBM2 vaults over the logic-layer mesh",
             "near-data-processing system under study (default)"});
  t.add_row({"cpu", "L1D + L2 + shared L3, DDR4-2400 behind the mesh",
             "host-processor baseline"});
  t.print(std::cout);
  std::printf("\nselect with --system=ndp|cpu or \"systems\" in a config\n");
}

void list_mechanisms() {
  Table t({"name", "aliases", "parameters", "summary"});
  for (const MechanismDescriptor& d :
       MechanismRegistry::instance().descriptors()) {
    std::string aliases;
    for (const std::string& a : d.aliases)
      aliases += aliases.empty() ? a : ", " + a;
    const std::string schema = d.param_schema();
    t.add_row({d.name, aliases, schema.empty() ? "-" : schema, d.summary});
  }
  t.print(std::cout);
  std::printf(
      "\nselect parameter points as 'name(key=value,...)', e.g. "
      "--mechanism='ech(ways=4)'\n");
}

void list_workloads() {
  Table t({"name", "aliases", "suite", "paper dataset", "summary"});
  for (const WorkloadDescriptor& d :
       WorkloadRegistry::instance().descriptors()) {
    std::string aliases;
    for (const std::string& a : d.aliases)
      aliases += aliases.empty() ? a : ", " + a;
    t.add_row({d.name, aliases, d.suite,
               d.paper_bytes
                   ? Table::num(double(d.paper_bytes) / double(1ull << 30), 0) +
                         " GB"
                   : "-",
               d.summary});
  }
  t.print(std::cout);
}

/// Per-component summary: hit rates and latencies grouped by stat prefix.
void print_component_stats(const RunResult& r) {
  Table t({"component", "metric", "value"});
  auto hit_rate = [&](const std::string& comp, const std::string& prefix) {
    const auto hits = r.stats.get(prefix + ".hit");
    const auto misses = r.stats.get(prefix + ".miss");
    if (hits + misses == 0) return;
    t.add_row({comp, "hit rate",
               Table::pct(r.stats.rate(prefix + ".hit", prefix + ".miss")) +
                   "  (" + std::to_string(hits + misses) + " lookups)"});
  };
  hit_rate("L1 dTLB", "tlb.l1d");
  hit_rate("L2 TLB", "tlb.l2");
  for (unsigned l = 4; l >= 1; --l)
    hit_rate("PWC L" + std::to_string(l), "pwc.l" + std::to_string(l));
  if (r.stats.get("walker.walks") > 0) {
    t.add_row({"walker", "walks", std::to_string(r.stats.get("walker.walks"))});
    t.add_row({"walker", "avg latency (cy)",
               Table::num(r.stats.mean("walker.latency"), 1)});
    t.add_row({"walker", "accesses/walk",
               Table::num(r.stats.mean("walker.accesses_per_walk"), 2)});
  }
  for (const char* lvl : {"l1", "l2", "l3"}) {
    const std::string served = std::string("mem.served.") + lvl;
    if (r.stats.get(served) > 0)
      t.add_row({std::string("cache ") + lvl, "accesses served",
                 std::to_string(r.stats.get(served))});
  }
  t.add_row({"dram", "accesses", std::to_string(r.stats.get("dram.access"))});
  if (const Average* q = r.stats.average("dram.queue_delay"))
    t.add_row({"dram", "avg queue delay (cy)", Table::num(q->mean(), 1)});
  t.print(std::cout);
}

void print_all_stats(const RunResult& r) {
  std::printf("  counters:\n");
  for (const auto& [name, v] : r.stats.counters())
    std::printf("    %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(v));
  std::printf("  averages:\n");
  for (const auto& [name, a] : r.stats.averages())
    std::printf("    %-32s mean=%.3f min=%.3f max=%.3f n=%llu\n", name.c_str(),
                a.mean(), a.min(), a.max(),
                static_cast<unsigned long long>(a.count()));
}

/// Host self-profiling report: where the wall time of this invocation went
/// (phase ns summed across cells) plus engine op counters and throughput.
void print_host_profile(const SweepResults& results) {
  const HostProfile merged = results.merged_host_profile();
  const HostCounters host = results.merged_host_counters();
  const std::uint64_t instrs = results.total_instructions();
  const double wall_s = static_cast<double>(results.host_wall_ns) / 1e9;
  std::printf("\nhost profile (%zu cells, %u jobs, %.3f s wall)\n",
              results.cells.size(), results.jobs_used, wall_s);
  Table t({"phase", "ms", "share"});
  const double total_ns = static_cast<double>(merged.total_ns());
  for (unsigned i = 0; i < kNumProfilePhases; ++i) {
    const auto p = static_cast<ProfilePhase>(i);
    t.add_row({to_string(p), Table::num(merged.ns(p) / 1e6, 1),
               Table::pct(total_ns > 0 ? merged.ns(p) / total_ns : 0.0)});
  }
  t.print(std::cout);
  const SessionStats& sess = results.session;
  // Engine speed is run-phase ns over simulated instructions; the host-ns
  // figure divides *total* wall (prefault, image builds, reporting...) by the
  // same instruction count and mostly tracks setup cost, not the hot loop.
  std::printf(
      "  %.1f cells/sec, %.1f run-ns per simulated instruction "
      "(%.1f host-ns incl. setup)\n"
      "  engine: %llu events, %llu heap pushes, peak queue %llu\n"
      "  session: %llu image builds, %llu restores, %llu evictions; "
      "%llu material builds, %llu material hits; ~%.1f MB resident\n"
      "  prepared: %llu builds, %llu hits, %llu evictions; "
      "store: %llu hits, %llu misses, %llu writes, %llu errors\n",
      wall_s > 0 ? results.cells.size() / wall_s : 0.0,
      instrs ? static_cast<double>(merged.ns(ProfilePhase::kRun)) / instrs
             : 0.0,
      instrs ? static_cast<double>(results.host_wall_ns) / instrs : 0.0,
      static_cast<unsigned long long>(host.events),
      static_cast<unsigned long long>(host.heap_pushes),
      static_cast<unsigned long long>(host.heap_peak),
      static_cast<unsigned long long>(sess.image_builds),
      static_cast<unsigned long long>(sess.image_hits),
      static_cast<unsigned long long>(sess.image_evictions),
      static_cast<unsigned long long>(sess.material_builds),
      static_cast<unsigned long long>(sess.material_hits),
      static_cast<double>(sess.resident_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(sess.prepared_builds),
      static_cast<unsigned long long>(sess.prepared_hits),
      static_cast<unsigned long long>(sess.prepared_evictions),
      static_cast<unsigned long long>(sess.store_hits),
      static_cast<unsigned long long>(sess.store_misses),
      static_cast<unsigned long long>(sess.store_writes),
      static_cast<unsigned long long>(sess.store_errors));
}

bool write_output(const std::string& path, const std::string& payload,
                  const char* what) {
  if (path == "-") {
    std::printf("%s\n", payload.c_str());
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    obs::log(obs::LogLevel::kError, "output.error")
        .kv("path", path)
        .kv("error", "cannot open for writing");
    return false;
  }
  out << payload << '\n';
  std::printf("wrote %s (%s)\n", path.c_str(), what);
  return true;
}

/// Flush the opt-in observability artifacts (--metrics-dump, --trace-out)
/// on the way out of any mode. Returns `code`, escalated to kExitRuntime
/// when an artifact could not be written.
int finish_obs(const std::string& metrics_path, const std::string& trace_path,
               int code) {
  if (!metrics_path.empty()) {
    std::string text = obs::Metrics::instance().prometheus_text();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    if (!write_output(metrics_path, text, "metrics") && code == 0)
      code = kExitRuntime;
  }
  if (!trace_path.empty()) {
    const std::size_t events = obs::TraceSink::instance().event_count();
    std::string error;
    if (obs::TraceSink::instance().end_to_file(trace_path, &error)) {
      obs::log(obs::LogLevel::kInfo, "trace.write")
          .kv("path", trace_path)
          .kv("events", events);
    } else {
      obs::log(obs::LogLevel::kError, "trace.write.error")
          .kv("path", trace_path)
          .kv("error", error);
      if (code == 0) code = kExitRuntime;
    }
  }
  return code;
}

// --- serving & client modes -------------------------------------------------

serve::Server* g_server = nullptr;
fleet::Coordinator* g_coordinator = nullptr;

void on_signal(int) {
  // request_shutdown is one write() to a pipe — async-signal-safe — and
  // starts the graceful drain: in-flight runs finish, then the daemon exits.
  if (g_server) g_server->request_shutdown();
  if (g_coordinator) g_coordinator->request_shutdown();
}

int serve_main(const serve::ServeOptions& opts, bool stdio_mode) {
  try {
    serve::Server server(opts);
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    if (stdio_mode) {
      server.serve_stream(0, 1);
    } else {
      const std::uint16_t port = server.start();
      // The one line a launcher script greps for the kernel-assigned port;
      // Server::start() already logged serve.listen with the same number.
      obs::log(obs::LogLevel::kInfo, "serve.ready")
          .kv("port", port)
          .kv("hint", "a shutdown request or SIGINT drains");
    }
    server.wait();
    g_server = nullptr;
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    return 0;
  } catch (const std::exception& e) {
    g_server = nullptr;
    obs::log(obs::LogLevel::kError, "serve.fatal").kv("error", e.what());
    return kExitRuntime;
  }
}

int fleet_main(fleet::FleetOptions opts) {
  try {
    fleet::Coordinator coordinator(std::move(opts));
    g_coordinator = &coordinator;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    const std::uint16_t port = coordinator.start();
    // Workers may still be booting; the count is informational, and every
    // dispatch re-checks connectivity (with retries) anyway.
    obs::log(obs::LogLevel::kInfo, "fleet.ready")
        .kv("port", port)
        .kv("workers_live", coordinator.live_workers())
        .kv("hint", "a shutdown request or SIGINT drains");
    coordinator.wait();
    g_coordinator = nullptr;
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    return 0;
  } catch (const std::exception& e) {
    g_coordinator = nullptr;
    obs::log(obs::LogLevel::kError, "fleet.fatal").kv("error", e.what());
    return kExitRuntime;
  }
}

int client_main(const std::string& addr, const std::string& op,
                const std::string& config_path, const std::string& json_path,
                unsigned jobs, unsigned connect_retries, bool no_cache) {
  std::string host = "127.0.0.1";
  std::string port_str = addr;
  const std::size_t colon = addr.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host = addr.substr(0, colon);
    port_str = addr.substr(colon + 1);
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port == 0 || port > 65535) {
    std::fprintf(stderr, "--client takes [HOST:]PORT, got '%s'\n",
                 addr.c_str());
    return kExitUsage;
  }

  if (op == "run") {
    if (config_path.empty()) {
      std::fprintf(stderr, "--client needs --config=FILE for a run request\n");
      return kExitUsage;
    }
    RunConfig config;
    try {
      config = RunConfig::load(config_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return kExitConfig;
    }
    try {
      serve::ConnectRetry retry;
      retry.retries = connect_retries;
      serve::Client client = serve::Client::connect(
          host, static_cast<std::uint16_t>(port), retry);
      const std::string envelope = client.run_line(
          serve::run_request_line(config.name.empty() ? "run" : config.name,
                                  config, jobs, 0, 1, !no_cache),
          [](std::size_t done, std::size_t total) {
            obs::log(obs::LogLevel::kInfo, "client.cell")
                .kv("done", done)
                .kv("total", total);
          });
      // The daemon's envelope is the batch document, byte for byte; write
      // it exactly where (and how) a batch run would have.
      std::string out_path = !json_path.empty() ? json_path
                             : !config.json_output.empty() ? config.json_output
                                                           : "-";
      if (!write_output(out_path, envelope, "JSON")) return kExitRuntime;
      return 0;
    } catch (const std::exception& e) {
      obs::log(obs::LogLevel::kError, "client.error").kv("error", e.what());
      return kExitRuntime;
    }
  }

  if (op != "stats" && op != "status" && op != "metrics" &&
      op != "shutdown") {
    std::fprintf(stderr,
                 "--op takes run|stats|status|metrics|shutdown, got '%s'\n",
                 op.c_str());
    return kExitUsage;
  }
  try {
    serve::ConnectRetry retry;
    retry.retries = connect_retries;
    serve::Client client =
        serve::Client::connect(host, static_cast<std::uint16_t>(port), retry);
    const std::string reply =
        client.roundtrip(serve::simple_request_line(op, op));
    if (op == "metrics") {
      // Unwrap the envelope: print the Prometheus text itself, so
      // `ndpsim --client=PORT --op=metrics` pipes straight into a scrape
      // file. Error envelopes (draining daemon) fall through verbatim.
      const JsonValue doc = JsonValue::parse(reply);
      if (const JsonValue* text = doc.find("text")) {
        std::fputs(text->as_string().c_str(), stdout);
        return 0;
      }
    }
    std::printf("%s\n", reply.c_str());
    return 0;
  } catch (const std::exception& e) {
    obs::log(obs::LogLevel::kError, "client.error").kv("error", e.what());
    return kExitRuntime;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string system = "ndp";
  std::vector<std::string> mechanisms{"ndpage"};
  std::vector<std::string> workloads{"gups"};
  std::vector<unsigned> cores{4};
  std::uint64_t instructions = 0, warmup = 0, seed = 42;
  double scale = 0;
  Overrides overrides;
  std::string json_path, csv_path, baseline;
  unsigned jobs = 1;
  bool dump_stats = false;
  bool profile = false;
  bool fresh_systems = false;
  std::string image_store;
  unsigned shard_index = 0, shard_count = 1;
  bool serve_mode = false, stdio_mode = false;
  serve::ServeOptions serve_opts;
  std::string client_addr, client_op = "run";
  unsigned connect_retries = 0;
  bool no_cache = false;
  bool fleet_mode = false;
  std::string worker_list, fleet_config_path, fleet_cache;
  std::string metrics_dump, trace_out;
  bool jobs_given = false;
  // Selection/run-parameter flags conflict with --config (the file is the
  // experiment); remember whether any was given explicitly.
  bool selection_flags_used = false;

  // Environment first, flags on top (flags win).
  obs::init_log_from_env();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Flags take values as --flag=value or --flag value.
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=')
        return arg.c_str() + n + 1;
      if (arg == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg == "--list-systems") {
      list_systems();
      return 0;
    }
    if (arg == "--list-mechanisms") {
      list_mechanisms();
      return 0;
    }
    if (arg == "--list-workloads") {
      list_workloads();
      return 0;
    }
    if (arg == "--stats") {
      dump_stats = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--fresh-systems") {
      fresh_systems = true;
    } else if (const char* v = value_of("--image-store")) {
      image_store = v;
    } else if (arg == "--serve") {
      serve_mode = true;
    } else if (arg == "--stdio") {
      stdio_mode = true;
    } else if (const char* v = value_of("--shard")) {
      char* end = nullptr;
      shard_index = static_cast<unsigned>(std::strtoul(v, &end, 10));
      if (end == v || *end != '/' ||
          (shard_count = static_cast<unsigned>(std::strtoul(end + 1, &end, 10)),
           *end != '\0') ||
          shard_count == 0 || shard_index >= shard_count) {
        std::fprintf(stderr,
                     "--shard takes I/N with 0 <= I < N, got '%s'\n", v);
        return kExitUsage;
      }
    } else if (const char* v = value_of("--port")) {
      char* end = nullptr;
      const unsigned long p = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || p > 65535) {
        std::fprintf(stderr, "--port takes a port number, got '%s'\n", v);
        return kExitUsage;
      }
      serve_opts.port = static_cast<std::uint16_t>(p);
    } else if (const char* v = value_of("--max-conns")) {
      char* end = nullptr;
      serve_opts.max_connections =
          static_cast<unsigned>(std::strtoul(v, &end, 10));
      if (end == v || *end != '\0' || serve_opts.max_connections == 0) {
        std::fprintf(stderr, "--max-conns takes a positive number, got '%s'\n",
                     v);
        return kExitUsage;
      }
    } else if (const char* v = value_of("--idle-timeout")) {
      char* end = nullptr;
      serve_opts.idle_timeout_ms = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || serve_opts.idle_timeout_ms <= 0) {
        std::fprintf(stderr,
                     "--idle-timeout takes milliseconds, got '%s'\n", v);
        return kExitUsage;
      }
    } else if (const char* v = value_of("--request-timeout")) {
      char* end = nullptr;
      serve_opts.request_timeout_ms =
          static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || serve_opts.request_timeout_ms <= 0) {
        std::fprintf(stderr,
                     "--request-timeout takes milliseconds, got '%s'\n", v);
        return kExitUsage;
      }
    } else if (const char* v = value_of("--client")) {
      client_addr = v;
    } else if (const char* v = value_of("--op")) {
      client_op = v;
    } else if (const char* v = value_of("--connect-retries")) {
      char* end = nullptr;
      connect_retries = static_cast<unsigned>(std::strtoul(v, &end, 10));
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "--connect-retries takes a number, got '%s'\n", v);
        return kExitUsage;
      }
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--fleet") {
      fleet_mode = true;
    } else if (const char* v = value_of("--worker")) {
      worker_list = v;
    } else if (const char* v = value_of("--fleet-config")) {
      fleet_config_path = v;
    } else if (const char* v = value_of("--fleet-cache")) {
      fleet_cache = v;
      if (fleet_cache != "on" && fleet_cache != "off") {
        std::fprintf(stderr, "--fleet-cache takes on|off, got '%s'\n", v);
        return kExitUsage;
      }
    } else if (const char* v = value_of("--log-level")) {
      obs::LogLevel level;
      if (!obs::parse_log_level(v, level)) {
        std::fprintf(
            stderr,
            "--log-level takes trace|debug|info|warn|error|off, got '%s'\n",
            v);
        return kExitUsage;
      }
      obs::set_log_level(level);
    } else if (const char* v = value_of("--log-format")) {
      const std::string f = v;
      if (f != "text" && f != "json") {
        std::fprintf(stderr, "--log-format takes text|json, got '%s'\n", v);
        return kExitUsage;
      }
      obs::set_log_format(f == "json" ? obs::LogFormat::kJson
                                      : obs::LogFormat::kText);
    } else if (const char* v = value_of("--metrics-dump")) {
      metrics_dump = v;
    } else if (const char* v = value_of("--trace-out")) {
      trace_out = v;
    } else if (const char* v = value_of("--config")) {
      config_path = v;
    } else if (const char* v = value_of("--jobs")) {
      char* end = nullptr;
      jobs = static_cast<unsigned>(std::strtoul(v, &end, 10));
      jobs_given = true;
      // 0 legitimately means "all host cores", so a parse failure must not
      // silently become 0.
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "--jobs takes a number (0 = all cores), got '%s'\n",
                     v);
        return kExitUsage;
      }
    } else if (const char* v = value_of("--system")) {
      system = v;
      selection_flags_used = true;
    } else if (const char* v = value_of("--mechanism")) {
      mechanisms = split_specs(v);
      selection_flags_used = true;
    } else if (const char* v = value_of("--workload")) {
      workloads = split_csv(v);
      selection_flags_used = true;
    } else if (const char* v = value_of("--cores")) {
      cores.clear();
      for (const std::string& c : split_csv(v))
        cores.push_back(
            static_cast<unsigned>(std::strtoul(c.c_str(), nullptr, 10)));
      selection_flags_used = true;
    } else if (const char* v = value_of("--instructions")) {
      instructions = std::strtoull(v, nullptr, 10);
      selection_flags_used = true;
    } else if (const char* v = value_of("--warmup")) {
      warmup = std::strtoull(v, nullptr, 10);
      selection_flags_used = true;
    } else if (const char* v = value_of("--scale")) {
      scale = std::strtod(v, nullptr);
      selection_flags_used = true;
    } else if (const char* v = value_of("--seed")) {
      seed = std::strtoull(v, nullptr, 10);
      selection_flags_used = true;
    } else if (const char* v = value_of("--bypass")) {
      const std::string s = v;
      if (s != "on" && s != "off") {
        std::fprintf(stderr, "--bypass takes on|off, got '%s'\n", v);
        return kExitUsage;
      }
      overrides.bypass = s == "on";
      selection_flags_used = true;
    } else if (const char* v = value_of("--pwc-levels")) {
      std::vector<unsigned> levels;
      if (std::string(v) != "none")
        for (const std::string& l : split_csv(v))
          levels.push_back(
              static_cast<unsigned>(std::strtoul(l.c_str(), nullptr, 10)));
      overrides.pwc_levels = std::move(levels);
      selection_flags_used = true;
    } else if (const char* v = value_of("--json")) {
      json_path = v;
    } else if (const char* v = value_of("--csv")) {
      csv_path = v;
    } else if (const char* v = value_of("--baseline")) {
      baseline = v;
    } else {
      // A known value-taking flag in space form with nothing after it fell
      // through value_of; say so instead of calling the flag unknown.
      for (const KnownFlag& flag : kKnownFlags) {
        if (flag.takes_value && arg == flag.name) {
          std::fprintf(stderr, "option '%s' requires a value\n", flag.name);
          return kExitUsage;
        }
      }
      // Unknown: suggest the closest known flag ("--list-system" is a typo
      // away from "--list-systems", not a reason to read the whole usage).
      std::vector<std::string> names;
      for (const KnownFlag& flag : kKnownFlags) names.push_back(flag.name);
      const std::string flag_part = arg.substr(0, arg.find('='));
      const std::string suggestion = closest_match(flag_part, names);
      if (!suggestion.empty()) {
        std::fprintf(stderr, "unknown option '%s'; did you mean '%s'?\n",
                     arg.c_str(), suggestion.c_str());
        return kExitUsage;
      }
      std::fprintf(stderr, "unknown option '%s'\n\n", arg.c_str());
      return usage(argv[0], kExitUsage);
    }
  }

  if (!trace_out.empty()) obs::TraceSink::instance().begin();

  const bool config_mode = !config_path.empty();
  if (config_mode && selection_flags_used) {
    std::fprintf(stderr,
                 "--config conflicts with selection/run-parameter flags; put "
                 "them in the config file\n");
    return kExitUsage;
  }

  // Serving / client / fleet modes branch off before any simulation setup.
  if ((serve_mode ? 1 : 0) + (client_addr.empty() ? 0 : 1) +
          (fleet_mode ? 1 : 0) >
      1) {
    std::fprintf(stderr,
                 "--serve, --client and --fleet are mutually exclusive\n");
    return kExitUsage;
  }
  if (!fleet_mode &&
      (!worker_list.empty() || !fleet_config_path.empty() ||
       !fleet_cache.empty())) {
    std::fprintf(stderr,
                 "--worker/--fleet-config/--fleet-cache require --fleet\n");
    return kExitUsage;
  }
  if (client_addr.empty() && (connect_retries != 0 || no_cache)) {
    std::fprintf(stderr, "--connect-retries/--no-cache require --client\n");
    return kExitUsage;
  }
  if (fleet_mode) {
    if (config_mode || selection_flags_used || shard_count > 1 || stdio_mode) {
      std::fprintf(stderr,
                   "--fleet conflicts with --config/--shard/--stdio/selection "
                   "flags; submit experiments as run requests instead\n");
      return kExitUsage;
    }
    fleet::FleetOptions fleet_opts;
    try {
      if (!fleet_config_path.empty())
        fleet_opts = fleet::FleetOptions::load(fleet_config_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return kExitConfig;
    }
    // --worker on the command line replaces the config's worker set. A
    // malformed endpoint is a flag error (exit 2), not a config error.
    if (!worker_list.empty()) {
      fleet_opts.workers.clear();
      try {
        for (const std::string& w : split_csv(worker_list))
          fleet_opts.workers.push_back(fleet::parse_worker_endpoint(w));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return kExitUsage;
      }
    }
    if (fleet_opts.workers.empty()) {
      std::fprintf(stderr,
                   "--fleet needs workers: --worker=HOST:PORT,... or a "
                   "--fleet-config file with a \"workers\" array\n");
      return kExitUsage;
    }
    // Shared daemon flags layer on top of the config file (flags win); an
    // untouched flag leaves the config (or FleetOptions default) in place.
    const serve::ServeOptions daemon_defaults;
    if (serve_opts.port != daemon_defaults.port)
      fleet_opts.port = serve_opts.port;
    if (serve_opts.max_connections != daemon_defaults.max_connections)
      fleet_opts.max_connections = serve_opts.max_connections;
    if (serve_opts.idle_timeout_ms != daemon_defaults.idle_timeout_ms)
      fleet_opts.idle_timeout_ms = serve_opts.idle_timeout_ms;
    if (serve_opts.request_timeout_ms != daemon_defaults.request_timeout_ms)
      fleet_opts.request_timeout_ms = serve_opts.request_timeout_ms;
    if (jobs_given) fleet_opts.jobs = jobs;
    if (!fleet_cache.empty()) fleet_opts.cache = fleet_cache == "on";
    return finish_obs(metrics_dump, trace_out, fleet_main(std::move(fleet_opts)));
  }
  if (serve_mode) {
    if (config_mode || selection_flags_used || shard_count > 1) {
      std::fprintf(stderr,
                   "--serve conflicts with --config/--shard/selection flags; "
                   "submit experiments as run requests instead\n");
      return kExitUsage;
    }
    serve_opts.jobs = jobs;
    // The daemon's warm Session persists through the store: a restarted
    // daemon restores snapshots the previous incarnation wrote.
    serve_opts.session.image_store = image_store;
    serve_opts.session.share_images = !fresh_systems;
    return finish_obs(metrics_dump, trace_out,
                      serve_main(serve_opts, stdio_mode));
  }
  if (stdio_mode) {
    std::fprintf(stderr, "--stdio requires --serve\n");
    return kExitUsage;
  }
  if (!client_addr.empty()) {
    if (selection_flags_used || shard_count > 1) {
      std::fprintf(stderr,
                   "--client conflicts with --shard/selection flags; the "
                   "daemon runs the --config grid as submitted\n");
      return kExitUsage;
    }
    return finish_obs(metrics_dump, trace_out,
                      client_main(client_addr, client_op, config_path,
                                  json_path, jobs, connect_retries, no_cache));
  }
  if (shard_count > 1 && !config_mode) {
    std::fprintf(stderr,
                 "--shard requires --config (the shards of a grid must agree "
                 "on its expansion)\n");
    return kExitUsage;
  }

  // An empty axis would silently fall back to RunSpec's defaults.
  if (mechanisms.empty() || workloads.empty() || cores.empty()) {
    std::fprintf(stderr,
                 "--mechanism/--workload/--cores need at least one value\n");
    return kExitUsage;
  }

  RunConfig config;
  std::vector<RunSpec> specs;
  try {
    if (config_mode) {
      config = RunConfig::load(config_path);
      if (!baseline.empty())
        config.baseline =
            MechanismRegistry::instance().resolve(baseline).canonical;
      if (!json_path.empty()) config.json_output = json_path;
      if (!csv_path.empty()) config.csv_output = csv_path;
      specs = config.expand();
    } else {
      RunSpec base = RunSpecBuilder()
                         .system(system)
                         .instructions(instructions)
                         .warmup(warmup)
                         .scale(scale)
                         .seed(seed)
                         .overrides(overrides)
                         .build();
      specs = sweep(base, mechanisms, workloads, cores);
      if (!baseline.empty())
        baseline = MechanismRegistry::instance().resolve(baseline).canonical;
    }
  } catch (const std::exception& e) {
    // Config parse/validation failures (malformed JSON with its line:col,
    // unknown mechanism/workload names) — a broken experiment description,
    // distinct from wrong flags (2) and from run-time failures (1).
    obs::log(obs::LogLevel::kError, "config.error").kv("error", e.what());
    return kExitConfig;
  }

  // A --baseline override (config files validate theirs at parse time) must
  // name a swept mechanism, and must fail here — before minutes of cells
  // run — not in the aggregation pass afterwards.
  const std::string& effective_baseline =
      config_mode ? config.baseline : baseline;
  if (!effective_baseline.empty()) {
    bool swept = false;
    for (const RunSpec& s : specs)
      if (s.mechanism_label() == effective_baseline) swept = true;
    if (!swept) {
      std::fprintf(stderr,
                   "--baseline '%s' is not one of the swept mechanisms\n",
                   effective_baseline.c_str());
      return kExitConfig;
    }
  }

  SweepOptions opts;
  opts.jobs = jobs;
  opts.share_images = !fresh_systems;
  opts.shard_index = shard_index;
  opts.shard_count = shard_count;
  opts.image_store = image_store;
  if (config_mode) {
    // The config's opt-out wins; its store directory fills in only when the
    // flag didn't name one.
    if (!config.share_images) opts.share_images = false;
    if (opts.image_store.empty()) opts.image_store = config.image_store;
  }
  if (specs.size() > 1) {
    // Progress through the logger (completion order, stderr by default):
    // stdout/file output stays byte-identical across job counts. Rate and
    // ETA come from the wall clock since the sweep started — coarse, but a
    // long grid answers "how much longer?" without a calculator.
    const auto sweep_start = std::chrono::steady_clock::now();
    opts.progress = [sweep_start](std::size_t done, std::size_t total,
                                  const RunSpec& spec) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        sweep_start)
              .count();
      const double rate = elapsed > 0 ? static_cast<double>(done) / elapsed
                                      : 0.0;
      obs::log(obs::LogLevel::kInfo, "sweep.progress")
          .kv("done", done)
          .kv("total", total)
          .kv("system", to_string(spec.system))
          .kv("cores", spec.cores)
          .kv("mechanism", spec.mechanism_label())
          .kv("workload", spec.workload_label())
          .kv("cells_per_sec", rate)
          .kv("eta_s", rate > 0 ? static_cast<double>(total - done) / rate
                                : 0.0);
    };
  }

  SweepResults results;
  try {
    results = run_sweep(specs, opts);
  } catch (const std::exception& e) {
    obs::log(obs::LogLevel::kError, "sweep.error").kv("error", e.what());
    return finish_obs(metrics_dump, trace_out, kExitRuntime);
  }
  if (config_mode) {
    results.name = config.name;
    results.baseline = config.baseline;
  } else {
    results.baseline = baseline;
  }
  results.include_host_profile = profile;

  if (results.cells.size() == 1) {
    const RunSpec& spec = results.cells[0].spec;
    std::printf("%s on %s, %u core(s), %s — %llu instructions/core\n\n",
                spec.mechanism_label().c_str(), to_string(spec.system).c_str(),
                spec.cores, spec.workload_label().c_str(),
                static_cast<unsigned long long>(
                    spec.instructions_per_core ? spec.instructions_per_core
                                               : default_instructions()));
    print_component_stats(results.cells[0].result);
    std::printf("\n");
  }
  if (dump_stats)
    for (const SweepCell& cell : results.cells) print_all_stats(cell.result);

  summary_table(results).print(std::cout);

  // A shard sees only its slice, so baseline cells (and hence speedups)
  // may be absent by construction; aggregation happens after sweep_merge.
  if (!results.baseline.empty() && !results.shard) {
    try {
      std::printf("\nspeedup over %s\n", results.baseline.c_str());
      speedup_table(results, results.baseline).print(std::cout);
    } catch (const std::exception& e) {
      obs::log(obs::LogLevel::kError, "aggregate.error").kv("error", e.what());
      return finish_obs(metrics_dump, trace_out, kExitRuntime);
    }
  }

  if (profile) print_host_profile(results);

  const std::string out_json =
      config_mode ? config.json_output : json_path;
  const std::string out_csv = config_mode ? config.csv_output : csv_path;
  if (!out_json.empty()) {
    std::string payload;
    if (config_mode) {
      // The config envelope: name + results + aggregate.
      payload = to_json(results);
    } else if (results.cells.size() == 1) {
      // Legacy flag-mode formats: one object for a single run, a plain
      // array for a sweep.
      payload = to_json(results.cells[0].result, &results.cells[0].spec,
                        profile);
    } else {
      payload = "[";
      for (std::size_t i = 0; i < results.cells.size(); ++i) {
        if (i) payload += ',';
        payload += to_json(results.cells[i].result, &results.cells[i].spec,
                           profile);
      }
      payload += ']';
    }
    if (!write_output(out_json, payload, "JSON"))
      return finish_obs(metrics_dump, trace_out, kExitRuntime);
  }
  if (!out_csv.empty() &&
      !write_output(out_csv, to_csv(results), "CSV"))
    return finish_obs(metrics_dump, trace_out, kExitRuntime);
  return finish_obs(metrics_dump, trace_out, 0);
}
