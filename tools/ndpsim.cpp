// ndpsim — config-driven front-end for the NDPage simulator.
//
// Every cell of the paper's evaluation (and any registered custom mechanism)
// is runnable from flags, no bench binary required:
//
//   ndpsim --system=ndp --cores=4 --mechanism=ndpage --workload=gups
//   ndpsim --mechanism=radix,ndpage --workload=gups,pr --cores=1,4 \
//          --json=sweep.json
//   ndpsim --list-mechanisms
//
// Comma-separated --mechanism/--workload/--cores values expand into a
// cross-product sweep (mechanism-major order). Results print as a table plus
// per-component stats; --json writes machine-readable results ('-' = stdout).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/experiment.h"

using namespace ndp;

namespace {

int usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "selection (comma-separated values expand into a sweep):\n"
      "  --system=ndp|cpu         simulated system (default ndp)\n"
      "  --cores=N[,N...]         core counts (default 4)\n"
      "  --mechanism=NAME[,...]   translation mechanisms (default ndpage;\n"
      "                           any registered name or alias)\n"
      "  --workload=NAME[,...]    workloads (default gups)\n"
      "\n"
      "run parameters:\n"
      "  --instructions=N         per-core instruction budget\n"
      "                           (default: NDPAGE_INSTRS env, else 150000)\n"
      "  --warmup=N               warmup refs/core (default instructions/15)\n"
      "  --scale=F                dataset scale fraction (default 0.75)\n"
      "  --seed=N                 RNG seed (default 42)\n"
      "\n"
      "ablation overrides:\n"
      "  --bypass=on|off          force metadata cache bypass\n"
      "  --pwc-levels=4,3|none    replace the mechanism's PWC level set\n"
      "\n"
      "output:\n"
      "  --json=PATH              write results as JSON ('-' = stdout)\n"
      "  --stats                  dump every stat counter, not just the\n"
      "                           per-component summary\n"
      "  --list-mechanisms        list registered mechanisms and exit\n"
      "  --list-workloads         list workloads and exit\n"
      "  --help                   this text\n",
      argv0);
  return code;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void list_mechanisms() {
  Table t({"name", "aliases", "huge pages", "summary"});
  for (const MechanismDescriptor& d :
       MechanismRegistry::instance().descriptors()) {
    std::string aliases;
    for (const std::string& a : d.aliases)
      aliases += aliases.empty() ? a : ", " + a;
    t.add_row({d.name, aliases, d.huge_pages ? "yes" : "no", d.summary});
  }
  t.print(std::cout);
}

void list_workloads() {
  Table t({"name", "suite", "paper dataset"});
  for (const WorkloadInfo& i : all_workload_info())
    t.add_row({i.name, i.suite,
               Table::num(double(i.paper_bytes) / double(1ull << 30), 0) +
                   " GB"});
  t.print(std::cout);
}

/// Per-component summary: hit rates and latencies grouped by stat prefix.
void print_component_stats(const RunResult& r) {
  Table t({"component", "metric", "value"});
  auto hit_rate = [&](const std::string& comp, const std::string& prefix) {
    const auto hits = r.stats.get(prefix + ".hit");
    const auto misses = r.stats.get(prefix + ".miss");
    if (hits + misses == 0) return;
    t.add_row({comp, "hit rate",
               Table::pct(r.stats.rate(prefix + ".hit", prefix + ".miss")) +
                   "  (" + std::to_string(hits + misses) + " lookups)"});
  };
  hit_rate("L1 dTLB", "tlb.l1d");
  hit_rate("L2 TLB", "tlb.l2");
  for (unsigned l = 4; l >= 1; --l)
    hit_rate("PWC L" + std::to_string(l), "pwc.l" + std::to_string(l));
  if (r.stats.get("walker.walks") > 0) {
    t.add_row({"walker", "walks", std::to_string(r.stats.get("walker.walks"))});
    t.add_row({"walker", "avg latency (cy)",
               Table::num(r.stats.mean("walker.latency"), 1)});
    t.add_row({"walker", "accesses/walk",
               Table::num(r.stats.mean("walker.accesses_per_walk"), 2)});
  }
  for (const char* lvl : {"l1", "l2", "l3"}) {
    const std::string served = std::string("mem.served.") + lvl;
    if (r.stats.get(served) > 0)
      t.add_row({std::string("cache ") + lvl, "accesses served",
                 std::to_string(r.stats.get(served))});
  }
  t.add_row({"dram", "accesses", std::to_string(r.stats.get("dram.access"))});
  if (const Average* q = r.stats.average("dram.queue_delay"))
    t.add_row({"dram", "avg queue delay (cy)", Table::num(q->mean(), 1)});
  t.print(std::cout);
}

void print_all_stats(const RunResult& r) {
  std::printf("  counters:\n");
  for (const auto& [name, v] : r.stats.counters())
    std::printf("    %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(v));
  std::printf("  averages:\n");
  for (const auto& [name, a] : r.stats.averages())
    std::printf("    %-32s mean=%.3f min=%.3f max=%.3f n=%llu\n", name.c_str(),
                a.mean(), a.min(), a.max(),
                static_cast<unsigned long long>(a.count()));
}

}  // namespace

int main(int argc, char** argv) {
  std::string system = "ndp";
  std::vector<std::string> mechanisms{"ndpage"};
  std::vector<std::string> workloads{"gups"};
  std::vector<unsigned> cores{4};
  std::uint64_t instructions = 0, warmup = 0, seed = 42;
  double scale = 0;
  Overrides overrides;
  std::string json_path;
  bool dump_stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=')
        return arg.c_str() + n + 1;
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg == "--list-mechanisms") {
      list_mechanisms();
      return 0;
    }
    if (arg == "--list-workloads") {
      list_workloads();
      return 0;
    }
    if (arg == "--stats") {
      dump_stats = true;
    } else if (const char* v = value_of("--system")) {
      system = v;
    } else if (const char* v = value_of("--mechanism")) {
      mechanisms = split_csv(v);
    } else if (const char* v = value_of("--workload")) {
      workloads = split_csv(v);
    } else if (const char* v = value_of("--cores")) {
      cores.clear();
      for (const std::string& c : split_csv(v))
        cores.push_back(
            static_cast<unsigned>(std::strtoul(c.c_str(), nullptr, 10)));
    } else if (const char* v = value_of("--instructions")) {
      instructions = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--warmup")) {
      warmup = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--scale")) {
      scale = std::strtod(v, nullptr);
    } else if (const char* v = value_of("--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--bypass")) {
      const std::string s = v;
      if (s != "on" && s != "off") {
        std::fprintf(stderr, "--bypass takes on|off, got '%s'\n", v);
        return 2;
      }
      overrides.bypass = s == "on";
    } else if (const char* v = value_of("--pwc-levels")) {
      std::vector<unsigned> levels;
      if (std::string(v) != "none")
        for (const std::string& l : split_csv(v))
          levels.push_back(
              static_cast<unsigned>(std::strtoul(l.c_str(), nullptr, 10)));
      overrides.pwc_levels = std::move(levels);
    } else if (const char* v = value_of("--json")) {
      json_path = v;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg.c_str());
      return usage(argv[0], 2);
    }
  }

  // An empty axis would silently fall back to RunSpec's defaults.
  if (mechanisms.empty() || workloads.empty() || cores.empty()) {
    std::fprintf(stderr,
                 "--mechanism/--workload/--cores need at least one value\n");
    return 2;
  }

  std::vector<RunSpec> specs;
  try {
    RunSpec base = RunSpecBuilder()
                       .system(system)
                       .instructions(instructions)
                       .warmup(warmup)
                       .scale(scale)
                       .seed(seed)
                       .overrides(overrides)
                       .build();
    specs = sweep(base, mechanisms, workloads, cores);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const bool is_sweep = specs.size() > 1;
  Table summary({"system", "cores", "mechanism", "workload", "cycles", "IPC",
                 "PTW (cy)", "translation", "PTE share"});
  std::string json_out = "[";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec& spec = specs[i];
    const RunResult r = run_experiment(spec);
    summary.add_row(
        {to_string(spec.system), std::to_string(spec.cores),
         spec.mechanism_label(), spec.workload_label(),
         std::to_string(static_cast<unsigned long long>(r.total_cycles)),
         Table::num(r.ipc, 3), Table::num(r.avg_ptw_latency, 1),
         Table::pct(r.translation_fraction), Table::pct(r.pte_access_share)});
    if (!json_path.empty()) {
      if (json_out.size() > 1) json_out += ',';
      json_out += to_json(r, &spec);
    }
    if (!is_sweep) {
      std::printf("%s on %s, %u core(s), %s — %llu instructions/core\n\n",
                  spec.mechanism_label().c_str(),
                  to_string(spec.system).c_str(), spec.cores,
                  spec.workload_label().c_str(),
                  static_cast<unsigned long long>(
                      spec.instructions_per_core ? spec.instructions_per_core
                                                 : default_instructions()));
      print_component_stats(r);
      std::printf("\n");
    }
    if (dump_stats) print_all_stats(r);
  }
  json_out += "]";

  summary.print(std::cout);

  if (!json_path.empty()) {
    // A single run writes one object; a sweep writes the array.
    const std::string payload =
        is_sweep ? json_out : json_out.substr(1, json_out.size() - 2);
    if (json_path == "-") {
      std::printf("%s\n", payload.c_str());
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
        return 1;
      }
      out << payload << '\n';
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return 0;
}
