// perf_report — records the simulator's own performance trajectory.
//
// Runs an experiment grid (default: the CI smoke grid), measures host wall
// time, and emits BENCH_engine.json with the throughput numbers that matter
// for the "as fast as the hardware allows" north star:
//
//   * cells/sec            — end-to-end grid throughput (build + sim)
//   * host-ns/instruction  — host nanoseconds per simulated instruction
//   * per-phase breakdown  — where the wall time went (build/prefault/run/…)
//   * engine op counters   — events + heap ops (deterministic; budgeted by
//                            the perf smoke test in ctest)
//
//   perf_report --config experiments/ci_smoke.json --jobs 1
//               --out BENCH_engine.json
//
// `--check=bench/BENCH_engine.json` additionally gates on the checked-in
// snapshot: the run fails (exit 1) when cells/sec drops more than 3x below
// it — wide enough that runner variance never trips it, tight enough that a
// gross regression (per-cell substrate rebuilds, per-event allocation) does.
//
// CI runs this on the smoke grid with --check and uploads the artifact, so
// every commit leaves a perf datapoint. Simulated results are untouched —
// this tool only reports on the host side.
//
// `--serve-out=PATH` additionally benches the resident daemon: an
// in-process server on a loopback TCP port runs the grid twice (cold, then
// warm on the shared Session) and answers a burst of status pings; the
// emitted BENCH_serve.json carries p50/p95/p99 round-trip latency straight
// from the daemon's own request-latency histogram (obs/metrics.h) — the
// same numbers the `metrics` wire op exposes to a scraper.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "fleet/coordinator.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/run_config.h"
#include "sim/sweep_runner.h"

using namespace ndp;

namespace {

/// --check tolerance: fail only when throughput drops below baseline/3.
/// Wide on purpose — CI runners vary ~2x; a real regression (rebuilding
/// the substrate per cell, per-event allocation) costs far more than 3x.
constexpr double kCheckBudget = 3.0;

int usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --config=FILE   experiment grid to run "
      "(default experiments/ci_smoke.json)\n"
      "  --jobs=N        host threads (default 1: single-thread engine "
      "throughput,\n"
      "                  the number the 2x hot-path budget tracks)\n"
      "  --repeat=N      run the grid N times, report the fastest "
      "(default 1)\n"
      "  --out=PATH      output file (default BENCH_engine.json, '-' = "
      "stdout)\n"
      "  --check=PATH    compare cells/sec against a checked-in snapshot "
      "(e.g.\n"
      "                  bench/BENCH_engine.json) and fail (exit 1) when "
      "this run\n"
      "                  is more than %gx slower — a generous budget, so "
      "only\n"
      "                  gross regressions fail CI, never runner noise\n"
      "  --serve-out=PATH\n"
      "                  also bench the resident daemon (warm drive-through "
      "+\n"
      "                  status pings over loopback TCP) and write "
      "BENCH_serve\n"
      "                  latency quantiles to PATH ('-' = stdout)\n"
      "  --pings=N       status requests for the serve bench (default "
      "200)\n"
      "  --fleet-out=PATH\n"
      "                  also bench fleet mode (a coordinator sharding the "
      "grid\n"
      "                  across in-process worker daemons) and write "
      "BENCH_fleet\n"
      "                  round-trip numbers to PATH ('-' = stdout)\n"
      "  --fleet-workers=N\n"
      "                  worker daemons for the fleet bench (default 2)\n",
      argv0, kCheckBudget);
  return code;
}

/// Resolve the daemon's request-latency histogram child for one op — the
/// handle the server populates in record_request (serve/server.cpp).
obs::Histogram& latency_of(const char* op_label) {
  return obs::Metrics::instance().histogram(
      "ndpsim_request_latency_seconds",
      "Wall seconds from request line to terminal envelope", op_label);
}

/// The daemon round-trip bench behind --serve-out. Returns 0 on success.
int serve_bench(const RunConfig& config, unsigned jobs, unsigned pings,
                const std::string& out_path) {
  double run_cold_s = 0.0, run_warm_s = 0.0;
  try {
    serve::ServeOptions sopts;
    sopts.jobs = jobs;
    serve::Server server(sopts);
    const std::uint16_t port = server.start();
    serve::Client client = serve::Client::connect("127.0.0.1", port);
    const auto timed_run = [&](const char* id) {
      const auto t0 = std::chrono::steady_clock::now();
      client.run(id, config, jobs);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    // Cold, then warm: the second drive rides the shared Session's image
    // and material caches — the latency a resident daemon actually serves.
    run_cold_s = timed_run("bench-cold");
    run_warm_s = timed_run("bench-warm");
    for (unsigned i = 0; i < pings; ++i)
      client.roundtrip(serve::simple_request_line("status", "ping"));
    client.roundtrip(serve::simple_request_line("shutdown", "bye"));
    server.wait();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve bench: %s\n", e.what());
    return 1;
  }

  // The server ran in-process, so its histogram children are readable
  // directly; a remote scraper gets the identical numbers via `metrics`.
  const obs::Histogram& status_h = latency_of("op=\"status\"");
  const obs::Histogram& run_h = latency_of("op=\"run\"");

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("serve");
  w.key("config").value(config.name);
  w.key("jobs").value(jobs);
  w.key("status_pings").value(pings);
  w.key("status_p50_us").value(status_h.quantile(0.50) * 1e6);
  w.key("status_p95_us").value(status_h.quantile(0.95) * 1e6);
  w.key("status_p99_us").value(status_h.quantile(0.99) * 1e6);
  w.key("status_observations").value(status_h.count());
  w.key("run_requests").value(run_h.count());
  w.key("run_p50_seconds").value(run_h.quantile(0.50));
  w.key("run_cold_seconds").value(run_cold_s);
  w.key("run_warm_seconds").value(run_warm_s);
  w.end_object();

  std::printf(
      "serve: status p50=%.0f us p95=%.0f us p99=%.0f us over %llu pings; "
      "run cold %.3f s, warm %.3f s\n",
      status_h.quantile(0.50) * 1e6, status_h.quantile(0.95) * 1e6,
      status_h.quantile(0.99) * 1e6,
      static_cast<unsigned long long>(status_h.count()), run_cold_s,
      run_warm_s);

  if (out_path == "-") {
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << w.str() << '\n';
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

/// The fleet round-trip bench behind --fleet-out: a coordinator over
/// `workers` in-process daemons runs the grid three ways — cold (shards
/// fan out to freshly-started workers), warm (cache bypassed, so the
/// shards ride the workers' warm Sessions), and cached (answered from the
/// coordinator's result cache without touching a worker). Returns 0 on
/// success.
int fleet_bench(const RunConfig& config, unsigned jobs, unsigned workers,
                const std::string& out_path) {
  double cold_s = 0.0, warm_s = 0.0, cached_s = 0.0;
  std::size_t cells = 0;
  bool cached_hit = false;
  try {
    std::vector<std::unique_ptr<serve::Server>> daemons;
    fleet::FleetOptions fopts;
    fopts.jobs = jobs;
    for (unsigned i = 0; i < workers; ++i) {
      serve::ServeOptions sopts;
      sopts.jobs = jobs;
      daemons.push_back(std::make_unique<serve::Server>(sopts));
      fleet::WorkerOptions w;
      w.port = daemons.back()->start();
      w.label = "bench-w" + std::to_string(i);
      fopts.workers.push_back(std::move(w));
    }
    fleet::Coordinator coordinator(std::move(fopts));
    const auto timed_run = [&](bool use_cache, bool* hit) {
      const auto t0 = std::chrono::steady_clock::now();
      const fleet::Coordinator::RunOutcome out =
          coordinator.run_grid(config, use_cache, jobs);
      cells = out.cells;
      if (hit) *hit = out.cache_hit;
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    cold_s = timed_run(true, nullptr);
    warm_s = timed_run(false, nullptr);
    cached_s = timed_run(true, &cached_hit);
    for (auto& d : daemons) {
      d->request_shutdown();
      d->wait();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet bench: %s\n", e.what());
    return 1;
  }

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("fleet");
  w.key("config").value(config.name);
  w.key("jobs").value(jobs);
  w.key("workers").value(workers);
  w.key("cells").value(static_cast<std::uint64_t>(cells));
  w.key("run_cold_seconds").value(cold_s);
  w.key("run_warm_seconds").value(warm_s);
  w.key("run_cached_seconds").value(cached_s);
  w.key("cached_run_was_cache_hit").value(cached_hit);
  w.key("cells_per_sec_warm")
      .value(warm_s > 0 ? static_cast<double>(cells) / warm_s : 0.0);
  w.end_object();

  std::printf(
      "fleet: %zu cells over %u workers — cold %.3f s, warm %.3f s, cached "
      "%.3f s (hit=%s)\n",
      cells, workers, cold_s, warm_s, cached_s, cached_hit ? "yes" : "no");

  if (out_path == "-") {
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << w.str() << '\n';
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path = "experiments/ci_smoke.json";
  std::string out_path = "BENCH_engine.json";
  std::string check_path;
  std::string serve_out;
  std::string fleet_out;
  unsigned jobs = 1;
  unsigned repeat = 1;
  unsigned pings = 200;
  unsigned fleet_workers = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=')
        return arg.c_str() + n + 1;
      if (arg == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (const char* v = value_of("--config")) {
      config_path = v;
    } else if (const char* v = value_of("--jobs")) {
      jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--repeat")) {
      repeat = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (repeat == 0) repeat = 1;
    } else if (const char* v = value_of("--out")) {
      out_path = v;
    } else if (const char* v = value_of("--check")) {
      check_path = v;
    } else if (const char* v = value_of("--serve-out")) {
      serve_out = v;
    } else if (const char* v = value_of("--pings")) {
      pings = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (pings == 0) pings = 1;
    } else if (const char* v = value_of("--fleet-out")) {
      fleet_out = v;
    } else if (const char* v = value_of("--fleet-workers")) {
      fleet_workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (fleet_workers == 0) fleet_workers = 1;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg.c_str());
      return usage(argv[0], 2);
    }
  }

  RunConfig config;
  SweepResults best;
  try {
    config = RunConfig::load(config_path);
    SweepOptions opts;
    opts.jobs = jobs;
    for (unsigned r = 0; r < repeat; ++r) {
      SweepResults run = run_sweep(config, opts);
      if (r == 0 || run.host_wall_ns < best.host_wall_ns)
        best = std::move(run);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const HostProfile merged = best.merged_host_profile();
  const HostCounters host = best.merged_host_counters();
  const std::uint64_t instrs = best.total_instructions();
  const double wall_s = static_cast<double>(best.host_wall_ns) / 1e9;

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("engine");
  w.key("config").value(config.name);
  w.key("jobs").value(best.jobs_used);
  w.key("repeat").value(repeat);
  w.key("cells").value(static_cast<std::uint64_t>(best.cells.size()));
  w.key("wall_seconds").value(wall_s);
  w.key("cells_per_sec")
      .value(wall_s > 0 ? static_cast<double>(best.cells.size()) / wall_s
                        : 0.0);
  w.key("simulated_instructions").value(instrs);
  // Whole-process wall time per instruction. Kept for schema compatibility,
  // but it mixes substrate build/prefault/collect time into the denominator's
  // work — run_ns_per_instruction below is the engine-speed number.
  w.key("host_ns_per_instruction")
      .value(instrs ? static_cast<double>(best.host_wall_ns) /
                          static_cast<double>(instrs)
                    : 0.0);
  // Run-phase (measured event loop) nanoseconds per simulated instruction:
  // the metric that actually tracks hot-loop changes. The old field moved
  // with prefault sizing and image-cache hits even when the engine itself
  // was untouched.
  const std::uint64_t run_ns = merged.ns(ProfilePhase::kRun);
  const double run_ns_per_instr =
      instrs ? static_cast<double>(run_ns) / static_cast<double>(instrs) : 0.0;
  w.key("run_ns_per_instruction").value(run_ns_per_instr);
  w.key("events_per_instruction")
      .value(instrs ? static_cast<double>(host.events) /
                          static_cast<double>(instrs)
                    : 0.0);
  // Same {"phases","total_ns","counters"} shape as the sweep JSON's
  // host_profile blocks — one schema for every consumer.
  w.key("host_profile");
  write_host_profile(w, merged, host);
  w.end_object();

  const double cells_per_sec =
      wall_s > 0 ? static_cast<double>(best.cells.size()) / wall_s : 0.0;
  std::printf(
      "%s: %zu cells in %.3f s (%.1f cells/sec, %.1f run-ns/instr, "
      "%.1f host-ns/instr, %llu events, %llu image builds / %llu restores)\n",
      config.name.c_str(), best.cells.size(), wall_s, cells_per_sec,
      run_ns_per_instr,
      instrs ? static_cast<double>(best.host_wall_ns) / instrs : 0.0,
      static_cast<unsigned long long>(host.events),
      static_cast<unsigned long long>(host.image_builds),
      static_cast<unsigned long long>(host.image_hits));

  // Gross-regression gate: this run must reach at least 1/kCheckBudget of
  // the checked-in snapshot's throughput.
  int check_status = 0;
  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "--check: cannot read '%s'\n", check_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      const JsonValue snap = JsonValue::parse(text.str());
      const std::string snap_config = snap.at("config").as_string();
      if (snap_config != config.name)
        std::fprintf(stderr,
                     "--check: warning: snapshot measures config '%s', this "
                     "run measures '%s'\n",
                     snap_config.c_str(), config.name.c_str());
      const double want = snap.at("cells_per_sec").as_double();
      if (cells_per_sec * kCheckBudget < want) {
        std::fprintf(stderr,
                     "--check FAILED: %.1f cells/sec is more than %gx slower "
                     "than the %s snapshot (%.1f cells/sec)\n",
                     cells_per_sec, kCheckBudget, check_path.c_str(), want);
        check_status = 1;
      } else {
        std::printf("--check ok: %.1f cells/sec vs snapshot %.1f (budget %gx)\n",
                    cells_per_sec, want, kCheckBudget);
      }
      // Run-phase gate, same budget: this is the engine-speed number, so a
      // hot-loop regression trips it even when cells/sec is masked by
      // image-cache hits. Older snapshots predate the field — skip then.
      if (const JsonValue* want_run = snap.find("run_ns_per_instruction")) {
        const double snap_run = want_run->as_double();
        if (snap_run > 0 && run_ns_per_instr > snap_run * kCheckBudget) {
          std::fprintf(stderr,
                       "--check FAILED: %.1f run-ns/instr is more than %gx "
                       "slower than the %s snapshot (%.1f run-ns/instr)\n",
                       run_ns_per_instr, kCheckBudget, check_path.c_str(),
                       snap_run);
          check_status = 1;
        } else {
          std::printf(
              "--check ok: %.1f run-ns/instr vs snapshot %.1f (budget %gx)\n",
              run_ns_per_instr, snap_run, kCheckBudget);
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--check: bad snapshot '%s': %s\n",
                   check_path.c_str(), e.what());
      return 1;
    }
  }

  if (out_path == "-") {
    std::printf("%s\n", w.str().c_str());
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << w.str() << '\n';
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!serve_out.empty()) {
    const int serve_status = serve_bench(config, jobs, pings, serve_out);
    if (serve_status != 0) return serve_status;
  }
  if (!fleet_out.empty()) {
    const int fleet_status =
        fleet_bench(config, jobs, fleet_workers, fleet_out);
    if (fleet_status != 0) return fleet_status;
  }
  return check_status;
}
