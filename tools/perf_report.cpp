// perf_report — records the simulator's own performance trajectory.
//
// Runs an experiment grid (default: the CI smoke grid), measures host wall
// time, and emits BENCH_engine.json with the throughput numbers that matter
// for the "as fast as the hardware allows" north star:
//
//   * cells/sec            — end-to-end grid throughput (build + sim)
//   * host-ns/instruction  — host nanoseconds per simulated instruction
//   * per-phase breakdown  — where the wall time went (build/prefault/run/…)
//   * engine op counters   — events + heap ops (deterministic; budgeted by
//                            the perf smoke test in ctest)
//
//   perf_report --config experiments/ci_smoke.json --jobs 1
//               --out BENCH_engine.json
//
// CI runs this on the smoke grid and uploads the artifact, so every commit
// leaves a perf datapoint. Simulated results are untouched — this tool only
// reports on the host side.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/json.h"
#include "sim/run_config.h"
#include "sim/sweep_runner.h"

using namespace ndp;

namespace {

int usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --config=FILE   experiment grid to run "
      "(default experiments/ci_smoke.json)\n"
      "  --jobs=N        host threads (default 1: single-thread engine "
      "throughput,\n"
      "                  the number the 2x hot-path budget tracks)\n"
      "  --repeat=N      run the grid N times, report the fastest "
      "(default 1)\n"
      "  --out=PATH      output file (default BENCH_engine.json, '-' = "
      "stdout)\n",
      argv0);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path = "experiments/ci_smoke.json";
  std::string out_path = "BENCH_engine.json";
  unsigned jobs = 1;
  unsigned repeat = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=')
        return arg.c_str() + n + 1;
      if (arg == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (const char* v = value_of("--config")) {
      config_path = v;
    } else if (const char* v = value_of("--jobs")) {
      jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value_of("--repeat")) {
      repeat = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (repeat == 0) repeat = 1;
    } else if (const char* v = value_of("--out")) {
      out_path = v;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg.c_str());
      return usage(argv[0], 2);
    }
  }

  RunConfig config;
  SweepResults best;
  try {
    config = RunConfig::load(config_path);
    SweepOptions opts;
    opts.jobs = jobs;
    for (unsigned r = 0; r < repeat; ++r) {
      SweepResults run = run_sweep(config, opts);
      if (r == 0 || run.host_wall_ns < best.host_wall_ns)
        best = std::move(run);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  const HostProfile merged = best.merged_host_profile();
  const HostCounters host = best.merged_host_counters();
  const std::uint64_t instrs = best.total_instructions();
  const double wall_s = static_cast<double>(best.host_wall_ns) / 1e9;

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("engine");
  w.key("config").value(config.name);
  w.key("jobs").value(best.jobs_used);
  w.key("repeat").value(repeat);
  w.key("cells").value(static_cast<std::uint64_t>(best.cells.size()));
  w.key("wall_seconds").value(wall_s);
  w.key("cells_per_sec")
      .value(wall_s > 0 ? static_cast<double>(best.cells.size()) / wall_s
                        : 0.0);
  w.key("simulated_instructions").value(instrs);
  w.key("host_ns_per_instruction")
      .value(instrs ? static_cast<double>(best.host_wall_ns) /
                          static_cast<double>(instrs)
                    : 0.0);
  w.key("events_per_instruction")
      .value(instrs ? static_cast<double>(host.events) /
                          static_cast<double>(instrs)
                    : 0.0);
  // Same {"phases","total_ns","counters"} shape as the sweep JSON's
  // host_profile blocks — one schema for every consumer.
  w.key("host_profile");
  write_host_profile(w, merged, host);
  w.end_object();

  std::printf(
      "%s: %zu cells in %.3f s (%.1f cells/sec, %.1f host-ns/instr, "
      "%llu events)\n",
      config.name.c_str(), best.cells.size(), wall_s,
      wall_s > 0 ? best.cells.size() / wall_s : 0.0,
      instrs ? static_cast<double>(best.host_wall_ns) / instrs : 0.0,
      static_cast<unsigned long long>(host.events));

  if (out_path == "-") {
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << w.str() << '\n';
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
