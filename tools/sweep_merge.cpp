// sweep_merge — recombine sharded sweep envelopes into the single-process
// document.
//
//   ndpsim --config grid.json --shard 0/3 --json s0.json
//   ndpsim --config grid.json --shard 1/3 --json s1.json
//   ndpsim --config grid.json --shard 2/3 --json s2.json
//   sweep_merge --out merged.json s0.json s1.json s2.json
//
// merged.json is byte-identical to what one `ndpsim --config grid.json
// --json merged.json` run writes (tests/serve_test.cpp pins this): the
// per-cell result texts are spliced raw in global spec order, the
// "aggregate" object is recomputed through the same code path the batch
// writer uses, and the shard provenance blocks are dropped. Shard files
// may be given in any order; envelopes from different grids, a missing or
// duplicated shard, or a wrong shard count are hard errors, not guesses.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sweep_runner.h"

namespace {

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--out=PATH] SHARD.json [SHARD.json ...]\n"
               "\n"
               "  Merge the JSON envelopes of `ndpsim --config G --shard i/N`\n"
               "  runs (given in any order) into the document a single\n"
               "  unsharded run of G would have written, byte for byte.\n"
               "\n"
               "  --out=PATH   write the merged envelope here (default '-',\n"
               "               stdout)\n",
               argv0);
  return code;
}

bool read_all(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    *out = ss.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Envelopes on disk end with the '\n' write_output appended; the merge
/// works on the bare document.
void trim_trailing_ws(std::string* s) {
  while (!s->empty() && (s->back() == '\n' || s->back() == '\r' ||
                         s->back() == ' ' || s->back() == '\t'))
    s->pop_back();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "-";
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out requires a value\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg.c_str());
      return usage(argv[0], 2);
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (shard_paths.empty()) {
    std::fprintf(stderr, "no shard files given\n\n");
    return usage(argv[0], 2);
  }

  std::vector<std::string> envelopes(shard_paths.size());
  for (std::size_t i = 0; i < shard_paths.size(); ++i) {
    if (!read_all(shard_paths[i], &envelopes[i])) {
      std::fprintf(stderr, "cannot read '%s'\n", shard_paths[i].c_str());
      return 1;
    }
    trim_trailing_ws(&envelopes[i]);
  }

  std::string merged;
  try {
    merged = ndp::merge_sharded_envelopes(envelopes);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  if (out_path == "-") {
    std::printf("%s\n", merged.c_str());
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << merged << '\n';
  std::fprintf(stderr, "wrote %s (%zu shards merged)\n", out_path.c_str(),
               shard_paths.size());
  return 0;
}
