// Fig. 8: page-table occupancy at PL1, PL2, PL3 (and PL4), plus the
// combined PL2/PL1 occupancy of NDPage's flattened table, per workload.
//
// Occupancy is structural (it depends on the mapped footprint, not timing),
// so this bench populates the tables exactly as a run's prefault does and
// reads the occupancy counters — no simulation needed.
#include <iostream>

#include "bench/bench_util.h"
#include "core/flat_page_table.h"
#include "os/phys_mem.h"
#include "translate/radix_page_table.h"

using namespace ndp;

int main() {
  bench::header("Fig. 8: page-table occupancy per level", "paper Fig. 8");

  Table t({"workload", "PL4", "PL3", "PL2", "PL1", "flat PL2/PL1"});
  std::vector<double> o4, o3, o2, o1, of;
  for (const WorkloadInfo& info : all_workload_info()) {
    WorkloadParams wp;
    wp.num_cores = 4;
    auto w = make_workload(info.kind, wp);

    PhysMemConfig pmc;  // structural: a zero-noise pool is sufficient
    pmc.noise_fraction = 0.0;
    PhysicalMemory pm(pmc);
    RadixPageTable radix(pm, 1);
    FlatPageTable flat(pm);
    auto map_region = [&](const VmRegion& r) {
      if (!r.prefault) return;
      for (Vpn v = vpn_of(r.base); v <= vpn_of(r.end() - 1); ++v) {
        radix.map(v, v);  // frame identity is irrelevant for occupancy
        flat.map(v, v);
      }
    };
    for (const VmRegion& r : w->regions()) map_region(r);

    const auto occ = radix.occupancy();  // PL4, PL3, PL2, PL1
    const auto focc = flat.occupancy();  // PL4, PL3, PL2/PL1
    o4.push_back(occ[0].rate());
    o3.push_back(occ[1].rate());
    o2.push_back(occ[2].rate());
    o1.push_back(occ[3].rate());
    of.push_back(focc[2].rate());
    t.add_row({info.name, Table::pct(occ[0].rate()), Table::pct(occ[1].rate()),
               Table::pct(occ[2].rate()), Table::pct(occ[3].rate()),
               Table::pct(focc[2].rate())});
  }
  t.add_row({"AVG", Table::pct(bench::mean(o4)), Table::pct(bench::mean(o3)),
             Table::pct(bench::mean(o2)), Table::pct(bench::mean(o1)),
             Table::pct(bench::mean(of))});
  t.print(std::cout);
  std::cout << "\nPaper reference points: PL2 avg 98.24%, PL1 avg 97.97%,"
               " PL3 3.12%, PL4 0.43% — the last two levels are nearly full,"
               " motivating the flattened PL2/PL1 (SIV-B).\n";
  return 0;
}
