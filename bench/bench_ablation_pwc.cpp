// Ablation: page-walk-cache behaviour (paper SV-C).
//   * Per-level PWC hit rates of the Radix baseline (paper: L4 ~100%,
//     L3 ~98.6%, L2/L1 ~15.4% on average).
//   * NDPage with and without its L4/L3 PWCs.
//   * NDPage L3-PWC sizing via the pwc_l3 mechanism parameter (the full
//     grid is checked in as experiments/ablation_pwc_sizing.json).
//
// Ported onto run_sweep(): each table is one host-parallel spec grid read
// back in deterministic spec order.
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Ablation: PWC hit rates and NDPage PWC sensitivity",
                "paper SV-C");

  // Table 1: Radix per-level PWC hit rates across every workload — a plain
  // one-axis sweep through the shared expander.
  {
    RunConfig cfg;
    cfg.mechanisms = {"Radix"};
    cfg.workloads.clear();
    for (const WorkloadInfo& info : all_workload_info())
      cfg.workloads.push_back(info.name);
    cfg.cores = {4};
    const SweepResults results = run_sweep(cfg, bench::parallel_opts());

    Table t({"workload", "PWC L4", "PWC L3", "PWC L2", "PWC L1"});
    std::vector<double> h4, h3, h2, h1;
    for (const SweepCell& cell : results.cells) {
      auto rate = [&](int l) {
        const std::string p = "pwc.l" + std::to_string(l) + ".";
        return cell.result.stats.rate(p + "hit", p + "miss");
      };
      h4.push_back(rate(4));
      h3.push_back(rate(3));
      h2.push_back(rate(2));
      h1.push_back(rate(1));
      t.add_row({cell.spec.workload_label(), Table::pct(rate(4)),
                 Table::pct(rate(3)), Table::pct(rate(2)),
                 Table::pct(rate(1))});
    }
    t.add_row({"AVG", Table::pct(bench::mean(h4)), Table::pct(bench::mean(h3)),
               Table::pct(bench::mean(h2)), Table::pct(bench::mean(h1))});
    t.print(std::cout);
    std::cout << "\nPaper reference points: L4 ~100%, L3 98.6%, L2/L1 avg 15.4%"
                 " — high upper-level hit rates are what NDPage keeps (SV-C).\n";
  }

  // Table 2: NDPage with vs without its L4/L3 PWCs (strip via overrides).
  {
    const WorkloadKind wls[] = {WorkloadKind::kRND, WorkloadKind::kPR,
                                WorkloadKind::kXS};
    std::vector<RunSpec> specs;
    for (WorkloadKind wl : wls) {
      const RunSpec with_pwc =
          bench::base_spec(SystemKind::kNdp, 4, Mechanism::kNdpage, wl);
      RunSpec no_pwc = with_pwc;
      no_pwc.overrides.pwc_levels = std::vector<unsigned>{};
      specs.push_back(with_pwc);
      specs.push_back(no_pwc);
    }
    const SweepResults results = run_sweep(specs, bench::parallel_opts());

    std::cout << "\nNDPage with vs without its L4/L3 PWCs (4-core, subset):\n";
    Table t({"workload", "NDPage PTW (cy)", "no-PWC PTW (cy)", "slowdown"});
    for (std::size_t i = 0; i < results.cells.size(); i += 2) {
      const double with_pwc = results.cells[i].result.avg_ptw_latency;
      const double without = results.cells[i + 1].result.avg_ptw_latency;
      t.add_row({results.cells[i].spec.workload_label(),
                 Table::num(with_pwc, 1), Table::num(without, 1),
                 Table::num(without / (with_pwc + 1e-9), 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nWithout PWCs every NDPage walk pays three memory accesses"
                 " instead of ~one.\n";
  }

  // Table 3: per-level sizing through the parameterized registry — resize
  // Radix's low-hit-rate L2/L1 PWCs by spec string, no override machinery.
  {
    const unsigned sizes[] = {8u, 32u, 256u};
    std::vector<RunSpec> specs;
    for (unsigned entries : sizes)
      specs.push_back(RunSpecBuilder()
                          .system(SystemKind::kNdp)
                          .cores(4)
                          .mechanism("radix(pwc_l2=" + std::to_string(entries) +
                                     ",pwc_l1=" + std::to_string(entries) + ")")
                          .workload(WorkloadKind::kRND)
                          .build());
    const SweepResults results = run_sweep(specs, bench::parallel_opts());

    std::cout << "\nRadix L2/L1-PWC sizing (4-core, RND; "
                 "full grid: experiments/ablation_pwc_sizing.json):\n";
    Table t({"mechanism", "L2 hit rate", "L1 hit rate", "PTW (cy)"});
    for (const SweepCell& cell : results.cells)
      t.add_row({cell.spec.mechanism_label(),
                 Table::pct(cell.result.stats.rate("pwc.l2.hit", "pwc.l2.miss")),
                 Table::pct(cell.result.stats.rate("pwc.l1.hit", "pwc.l1.miss")),
                 Table::num(cell.result.avg_ptw_latency, 1)});
    t.print(std::cout);
  }
  return 0;
}
