// Ablation: page-walk-cache behaviour (paper SV-C).
//   * Per-level PWC hit rates of the Radix baseline (paper: L4 ~100%,
//     L3 ~98.6%, L2/L1 ~15.4% on average).
//   * NDPage with and without its L4/L3 PWCs.
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Ablation: PWC hit rates and NDPage PWC sensitivity",
                "paper SV-C");

  Table t({"workload", "PWC L4", "PWC L3", "PWC L2", "PWC L1"});
  std::vector<double> h4, h3, h2, h1;
  for (const WorkloadInfo& info : all_workload_info()) {
    const RunResult r = run_experiment(
        bench::base_spec(SystemKind::kNdp, 4, Mechanism::kRadix, info.kind));
    auto rate = [&](int l) {
      const std::string p = "pwc.l" + std::to_string(l) + ".";
      return r.stats.rate(p + "hit", p + "miss");
    };
    h4.push_back(rate(4));
    h3.push_back(rate(3));
    h2.push_back(rate(2));
    h1.push_back(rate(1));
    t.add_row({info.name, Table::pct(rate(4)), Table::pct(rate(3)),
               Table::pct(rate(2)), Table::pct(rate(1))});
  }
  t.add_row({"AVG", Table::pct(bench::mean(h4)), Table::pct(bench::mean(h3)),
             Table::pct(bench::mean(h2)), Table::pct(bench::mean(h1))});
  t.print(std::cout);
  std::cout << "\nPaper reference points: L4 ~100%, L3 98.6%, L2/L1 avg 15.4%"
               " — high upper-level hit rates are what NDPage keeps (SV-C).\n";

  std::cout << "\nNDPage with vs without its L4/L3 PWCs (4-core, subset):\n";
  Table t2({"workload", "NDPage PTW (cy)", "no-PWC PTW (cy)", "slowdown"});
  for (WorkloadKind wl : {WorkloadKind::kRND, WorkloadKind::kPR,
                          WorkloadKind::kXS}) {
    const RunResult with_pwc = run_experiment(
        bench::base_spec(SystemKind::kNdp, 4, Mechanism::kNdpage, wl));
    RunSpec no_pwc = bench::base_spec(SystemKind::kNdp, 4, Mechanism::kNdpage, wl);
    no_pwc.overrides.pwc_levels = std::vector<unsigned>{};
    const RunResult without = run_experiment(no_pwc);
    t2.add_row({to_string(wl), Table::num(with_pwc.avg_ptw_latency, 1),
                Table::num(without.avg_ptw_latency, 1),
                Table::num(without.avg_ptw_latency /
                               (with_pwc.avg_ptw_latency + 1e-9), 2) + "x"});
  }
  t2.print(std::cout);
  std::cout << "\nWithout PWCs every NDPage walk pays three memory accesses"
               " instead of ~one.\n";
  return 0;
}
