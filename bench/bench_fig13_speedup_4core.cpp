// Fig. 13: speedup of the evaluated mechanisms over Radix, 4-core NDP.
// Paper reference: NDPage 1.426 avg (+9.8% over ECH).
#include "bench/speedup_common.h"

int main() { return ndp::bench::run_speedup_figure(4, "13"); }
