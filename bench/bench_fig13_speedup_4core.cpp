// Fig. 13: speedup of the evaluated mechanisms over Radix, 4-core NDP.
// Paper reference: NDPage 1.426 avg (+9.8% over ECH).
//
// Thin wrapper over run_sweep() + the shared speedup aggregation (see
// bench_util.h); the grid also exists as experiments/fig13_speedup_4core.json.
#include "bench/bench_util.h"

int main() { return ndp::bench::run_speedup_figure(4, "13"); }
