// Fig. 12: speedup of the evaluated mechanisms over Radix, 1-core NDP.
// Paper reference: NDPage 1.344 avg (+14.3% over the 2nd best, ECH 1.176);
// Huge Page 1.08; Ideal above NDPage.
//
// Thin wrapper over run_sweep() + the shared speedup aggregation (see
// bench_util.h); the grid also exists as experiments/fig12_speedup_1core.json.
#include "bench/bench_util.h"

int main() { return ndp::bench::run_speedup_figure(1, "12"); }
