// Fig. 12: speedup of the evaluated mechanisms over Radix, 1-core NDP.
// Paper reference: NDPage 1.344 avg (+14.3% over the 2nd best, ECH 1.176);
// Huge Page 1.08; Ideal above NDPage.
#include "bench/speedup_common.h"

int main() { return ndp::bench::run_speedup_figure(1, "12"); }
