// Table I: simulation configuration of the CPU and NDP systems.
#include <iostream>

#include "bench/bench_util.h"
#include "core/system.h"

using namespace ndp;

int main() {
  bench::header("Table I: simulation configuration", "paper Table I");

  Table t({"component", "CPU system", "NDP system"});
  const MemorySystemConfig cpu = MemorySystemConfig::cpu(4);
  const MemorySystemConfig ndp = MemorySystemConfig::ndp(4);
  auto cache_str = [](const CacheConfig& c) {
    return std::to_string(c.size_bytes / 1024) + "KB, " +
           std::to_string(c.ways) + "-way, " + std::to_string(c.latency) +
           "-cycle";
  };
  t.add_row({"Core", "1/4/8 x86-64 2.6GHz", "1/4/8 x86-64 2.6GHz"});
  t.add_row({"L1D", cache_str(cpu.l1), cache_str(ndp.l1)});
  t.add_row({"L2", cache_str(*cpu.l2), "none"});
  t.add_row({"L3 (shared)", cache_str(*cpu.l3) + "/core", "none"});
  t.add_row({"L1 DTLB", "64-entry, 4-way, 1-cycle (+32x2MB)",
             "64-entry, 4-way, 1-cycle (+32x2MB)"});
  t.add_row({"L2 TLB", "1536-entry, 12-cycle (4KB only)",
             "1536-entry, 12-cycle (4KB only)"});
  t.add_row({"PWCs", "per level, 32-entry", "per mechanism (SV-C)"});
  t.add_row({"Interconnect", "mesh, 4-cycle hop", "mesh, 4-cycle hop"});
  auto dram_str = [](const DramTiming& d) {
    return d.name + ", " + std::to_string(d.channels) + "ch x " +
           std::to_string(d.banks_per_channel) + " banks, tRC=" +
           std::to_string(d.t_rc) + "cy";
  };
  t.add_row({"Memory", dram_str(cpu.dram) + ", 16GB", dram_str(ndp.dram) + ", 16GB"});
  t.print(std::cout);
  return 0;
}
