// Related-work comparison (extension): NDPage vs a DIPTA-style
// restricted-associativity design (paper SVIII argues DIPTA suffers from
// page conflicts; this bench measures that trade-off head-on).
//
// DIPTA resolves any translation in one near-data access (great walks) but
// pays set-conflict evictions: a page displaced from its set must re-fault
// on its next touch. With low associativity the conflict penalty dominates.
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Related work: NDPage vs DIPTA-style restricted associativity",
                "paper SVIII discussion");

  Table t({"workload", "DIPTA speedup", "NDPage speedup", "DIPTA PTW",
           "NDPage PTW", "DIPTA conflicts"});
  for (WorkloadKind wl : {WorkloadKind::kRND, WorkloadKind::kPR,
                          WorkloadKind::kXS, WorkloadKind::kGEN}) {
    const RunSpec radix_spec =
        bench::base_spec(SystemKind::kNdp, 4, Mechanism::kRadix, wl);
    const double radix =
        static_cast<double>(bench::session().run(radix_spec).total_cycles);

    RunSpec dipta_spec = radix_spec;
    dipta_spec.mechanism = Mechanism::kDipta;
    const RunResult dipta = bench::session().run(dipta_spec);

    RunSpec ndpage_spec = radix_spec;
    ndpage_spec.mechanism = Mechanism::kNdpage;
    const RunResult ndpage = bench::session().run(ndpage_spec);

    t.add_row({to_string(wl),
               Table::num(radix / double(dipta.total_cycles), 3),
               Table::num(radix / double(ndpage.total_cycles), 3),
               Table::num(dipta.avg_ptw_latency, 0),
               Table::num(ndpage.avg_ptw_latency, 0),
               std::to_string(dipta.stats.get("as.set_conflict_evictions"))});
  }
  t.print(std::cout);
  std::cout << "\nDIPTA's single-access walks rival NDPage's, but its"
               " translations are hostage to\nset conflicts (re-faults), and"
               " it restricts page placement — the costs the paper\ncites"
               " when positioning NDPage as restriction-free (SVIII).\n";
  return 0;
}
