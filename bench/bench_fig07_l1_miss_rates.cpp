// Fig. 7: L1 data-cache miss rates in the 4-core NDP system — normal data
// under the Radix baseline vs the no-translation Ideal (the pollution gap),
// and the metadata (PTE) miss rate.
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Fig. 7: L1 miss rates, data (ideal vs actual) and metadata",
                "paper Fig. 7");

  Table t({"workload", "data miss (ideal)", "data miss (radix)",
           "metadata miss", "pollution victims"});
  std::vector<double> ideal_m, radix_m, meta_m;
  for (const WorkloadInfo& info : all_workload_info()) {
    const RunResult radix = bench::session().run(
        bench::base_spec(SystemKind::kNdp, 4, Mechanism::kRadix, info.kind));
    const RunResult ideal = bench::session().run(
        bench::base_spec(SystemKind::kNdp, 4, Mechanism::kIdeal, info.kind));
    const double rm = radix.stats.rate("l1.miss.data", "l1.hit.data");
    const double im = ideal.stats.rate("l1.miss.data", "l1.hit.data");
    const double mm = radix.stats.rate("l1.miss.meta", "l1.hit.meta");
    ideal_m.push_back(im);
    radix_m.push_back(rm);
    meta_m.push_back(mm);
    t.add_row({info.name, Table::pct(im), Table::pct(rm), Table::pct(mm),
               std::to_string(radix.stats.get("l1.pollution_victims"))});
  }
  t.add_row({"AVG", Table::pct(bench::mean(ideal_m)),
             Table::pct(bench::mean(radix_m)), Table::pct(bench::mean(meta_m)),
             "-"});
  t.print(std::cout);
  std::cout << "\nPaper reference points: metadata miss 98.28%; data miss"
               " 35.89% with translation vs 26.16% ideal (1.37x pollution"
               " gap).\nNote: this model's metadata miss rate is lower because"
               " upper-level PTE lines of the scaled datasets retain L1"
               " residency — see EXPERIMENTS.md.\n";
  return 0;
}
