// Ablation: HBM2 channel-count sensitivity of the 8-core NDP contention
// story (Fig. 6's latency growth depends on the vault service capacity).
//
// Ported onto run_sweep(): the (channels x mechanism) grid is one
// host-parallel spec list, read back in deterministic spec order.
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Ablation: NDP DRAM channel-count sensitivity (8-core, RND)",
                "design-space study behind Fig. 6/14");

  const unsigned channel_counts[] = {1u, 2u, 4u, 8u};
  std::vector<RunSpec> specs;
  for (unsigned channels : channel_counts) {
    DramTiming dt = DramTiming::hbm2();
    dt.channels = channels;
    RunSpec radix = bench::base_spec(SystemKind::kNdp, 8, Mechanism::kRadix,
                                     WorkloadKind::kRND);
    radix.overrides.dram = dt;
    RunSpec ndpage = radix;
    ndpage.mechanism = Mechanism::kNdpage;
    specs.push_back(radix);
    specs.push_back(ndpage);
  }

  const SweepResults results = run_sweep(specs, bench::parallel_opts());

  Table t({"channels", "radix PTW (cy)", "NDPage PTW (cy)", "NDPage speedup",
           "dram queue (cy)"});
  for (std::size_t i = 0; i < results.cells.size(); i += 2) {
    const RunResult& r = results.cells[i].result;      // Radix
    const RunResult& n = results.cells[i + 1].result;  // NDPage
    const Average* q = r.stats.average("dram.queue_delay");
    t.add_row({std::to_string(channel_counts[i / 2]),
               Table::num(r.avg_ptw_latency, 1), Table::num(n.avg_ptw_latency, 1),
               Table::num(double(r.total_cycles) / double(n.total_cycles), 3),
               Table::num(q ? q->mean() : 0.0, 1)});
  }
  t.print(std::cout);
  std::cout << "\nFewer channels -> more queueing -> larger NDPage advantage"
               " (it issues ~half the PTE traffic per walk).\n";
  return 0;
}
