// Ablation: HBM2 channel-count sensitivity of the 8-core NDP contention
// story (Fig. 6's latency growth depends on the vault service capacity).
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Ablation: NDP DRAM channel-count sensitivity (8-core, RND)",
                "design-space study behind Fig. 6/14");

  Table t({"channels", "radix PTW (cy)", "NDPage PTW (cy)", "NDPage speedup",
           "dram queue (cy)"});
  for (unsigned channels : {1u, 2u, 4u, 8u}) {
    DramTiming dt = DramTiming::hbm2();
    dt.channels = channels;
    RunSpec radix = bench::base_spec(SystemKind::kNdp, 8, Mechanism::kRadix,
                                     WorkloadKind::kRND);
    radix.overrides.dram = dt;
    RunSpec ndpage = radix;
    ndpage.mechanism = Mechanism::kNdpage;
    const RunResult r = run_experiment(radix);
    const RunResult n = run_experiment(ndpage);
    const Average* q = r.stats.average("dram.queue_delay");
    t.add_row({std::to_string(channels), Table::num(r.avg_ptw_latency, 1),
               Table::num(n.avg_ptw_latency, 1),
               Table::num(double(r.total_cycles) / double(n.total_cycles), 3),
               Table::num(q ? q->mean() : 0.0, 1)});
  }
  t.print(std::cout);
  std::cout << "\nFewer channels -> more queueing -> larger NDPage advantage"
               " (it issues ~half the PTE traffic per walk).\n";
  return 0;
}
