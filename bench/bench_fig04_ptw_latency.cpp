// Fig. 4: average page-table-walk latency in 4-core NDP and CPU systems,
// and NDP's PTW-latency increment over the CPU. Also prints the SIV-A text
// statistics (TLB miss rate, PTE share of memory accesses, PTE DRAM traffic
// ratio NDP vs CPU).
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Fig. 4: avg PTW latency, 4-core NDP vs CPU (Radix)",
                "paper Fig. 4 + SIV-A statistics");

  Table t({"workload", "NDP PTW (cy)", "CPU PTW (cy)", "NDP increment",
           "NDP L2TLB miss", "NDP PTE share"});
  std::vector<double> ndp_lat, cpu_lat, tlb_miss, pte_share;
  double ndp_pte_dram = 0, cpu_pte_dram = 0;
  for (const WorkloadInfo& info : all_workload_info()) {
    const RunResult ndp = bench::session().run(
        bench::base_spec(SystemKind::kNdp, 4, Mechanism::kRadix, info.kind));
    const RunResult cpu = bench::session().run(
        bench::base_spec(SystemKind::kCpu, 4, Mechanism::kRadix, info.kind));
    ndp_lat.push_back(ndp.avg_ptw_latency);
    cpu_lat.push_back(cpu.avg_ptw_latency);
    tlb_miss.push_back(ndp.l2_tlb_miss_rate);
    pte_share.push_back(ndp.pte_access_share);
    ndp_pte_dram += static_cast<double>(ndp.stats.get("dram.metadata"));
    cpu_pte_dram += static_cast<double>(cpu.stats.get("dram.metadata"));
    t.add_row({info.name, Table::num(ndp.avg_ptw_latency, 1),
               Table::num(cpu.avg_ptw_latency, 1),
               Table::pct(ndp.avg_ptw_latency / cpu.avg_ptw_latency - 1.0),
               Table::pct(ndp.l2_tlb_miss_rate),
               Table::pct(ndp.pte_access_share)});
  }
  t.add_row({"AVG", Table::num(bench::mean(ndp_lat), 1),
             Table::num(bench::mean(cpu_lat), 1),
             Table::pct(bench::mean(ndp_lat) / bench::mean(cpu_lat) - 1.0),
             Table::pct(bench::mean(tlb_miss)), Table::pct(bench::mean(pte_share))});
  t.print(std::cout);

  std::cout << "\nPaper reference points: NDP avg PTW = 474.56 cy (up to 1066),"
               " 229% above CPU;\nTLB miss 91.27%; PTEs = 65.8% of memory"
               " accesses; PTE DRAM traffic NDP/CPU = 200.4x.\n";
  std::cout << "Measured PTE DRAM traffic ratio NDP/CPU = "
            << Table::num(ndp_pte_dram / (cpu_pte_dram + 1e-9), 1) << "x\n";
  return 0;
}
