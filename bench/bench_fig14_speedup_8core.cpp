// Fig. 14: speedup of the evaluated mechanisms over Radix, 8-core NDP.
// Paper reference: NDPage 1.407 avg (+30.5% over ECH); Huge Page degrades
// to 0.901 of Radix (fault latency / bloat / contiguity exhaustion).
//
// Thin wrapper over run_sweep() + the shared speedup aggregation (see
// bench_util.h); the grid also exists as experiments/fig14_speedup_8core.json.
#include "bench/bench_util.h"

int main() { return ndp::bench::run_speedup_figure(8, "14"); }
