// Table II: evaluated workloads (suite, paper dataset size, and the scaled
// dataset this reproduction runs — see DESIGN.md "Substitutions").
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Table II: evaluated workloads", "paper Table II");

  Table t({"suite", "workload", "paper dataset", "scaled dataset", "regions"});
  for (const WorkloadInfo& info : all_workload_info()) {
    WorkloadParams p;
    p.num_cores = 4;
    auto w = make_workload(info.kind, p);
    t.add_row({info.suite, info.name,
               Table::num(double(info.paper_bytes) / double(1 << 30), 1) + " GB",
               Table::num(double(w->dataset_bytes()) / double(1 << 30), 2) + " GB",
               std::to_string(w->regions().size())});
  }
  t.print(std::cout);
  return 0;
}
