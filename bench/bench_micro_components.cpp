// Component micro-benchmarks (google-benchmark): raw speed of the
// simulator's hot structures. These guard the simulator's own performance,
// not the paper's results.
#include <benchmark/benchmark.h>

#include "cache/cache.h"
#include "common/rng.h"
#include "core/flat_page_table.h"
#include "dram/dram.h"
#include "os/phys_mem.h"
#include "translate/ech_page_table.h"
#include "translate/radix_page_table.h"
#include "translate/tlb.h"

namespace ndp {
namespace {

PhysMemConfig pm_cfg() {
  PhysMemConfig cfg;
  cfg.bytes = 256ull << 20;
  cfg.noise_fraction = 0.0;
  return cfg;
}

void BM_ZipfSample(benchmark::State& state) {
  Zipf z(1u << 20, 0.75);
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(z(rng));
}
BENCHMARK(BM_ZipfSample);

void BM_TlbLookup(benchmark::State& state) {
  Tlb tlb(TlbConfig{.name = "t", .entries = 64, .ways = 4, .latency = 1});
  Rng rng(2);
  for (Vpn v = 0; v < 64; ++v) tlb.insert(v << kPageShift, v, kPageShift);
  for (auto _ : state)
    benchmark::DoNotOptimize(tlb.lookup(rng.below(128) << kPageShift));
}
BENCHMARK(BM_TlbLookup);

void BM_CacheAccess(benchmark::State& state) {
  Cache c(CacheConfig{.name = "L1", .size_bytes = 32 * 1024, .ways = 8,
                      .latency = 4, .repl = ReplPolicy::kLru});
  Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        c.access(rng.below(1u << 16), AccessType::kRead, AccessClass::kData));
}
BENCHMARK(BM_CacheAccess);

void BM_DramAccess(benchmark::State& state) {
  Dram d(DramTiming::hbm2());
  Rng rng(4);
  Cycle now = 0;
  for (auto _ : state) {
    now += 50;
    benchmark::DoNotOptimize(d.access(now, rng.below(1ull << 32),
                                      AccessType::kRead, AccessClass::kData));
  }
}
BENCHMARK(BM_DramAccess);

void BM_RadixWalk(benchmark::State& state) {
  PhysicalMemory pm(pm_cfg());
  RadixPageTable pt(pm, 1);
  Rng rng(5);
  for (Vpn v = 0; v < 10000; ++v) pt.map(v, v + 1);
  for (auto _ : state) benchmark::DoNotOptimize(pt.walk(rng.below(10000)));
}
BENCHMARK(BM_RadixWalk);

void BM_FlatWalk(benchmark::State& state) {
  PhysicalMemory pm(pm_cfg());
  FlatPageTable pt(pm);
  Rng rng(6);
  for (Vpn v = 0; v < 10000; ++v) pt.map(v, v + 1);
  for (auto _ : state) benchmark::DoNotOptimize(pt.walk(rng.below(10000)));
}
BENCHMARK(BM_FlatWalk);

void BM_EchLookup(benchmark::State& state) {
  PhysicalMemory pm(pm_cfg());
  EchPageTable pt(pm);
  Rng rng(7);
  for (Vpn v = 0; v < 10000; ++v) pt.map(v, v + 1);
  for (auto _ : state) benchmark::DoNotOptimize(pt.lookup(rng.below(10000)));
}
BENCHMARK(BM_EchLookup);

void BM_BuddyAllocFree(benchmark::State& state) {
  BuddyAllocator b(1u << 20);
  for (auto _ : state) {
    auto f = b.alloc(0);
    b.free(*f, 0);
  }
}
BENCHMARK(BM_BuddyAllocFree);

// The Session image-reuse tradeoff on the substrate: constructing with
// boot-noise injection (what every sweep cell used to pay) vs restoring a
// snapshot (what image-sharing cells pay instead).
void BM_PhysMemConstructWithNoise(benchmark::State& state) {
  PhysMemConfig cfg = pm_cfg();
  cfg.noise_fraction = 0.03;
  for (auto _ : state) {
    PhysicalMemory pm(cfg);
    benchmark::DoNotOptimize(pm.free_frames());
  }
}
BENCHMARK(BM_PhysMemConstructWithNoise);

void BM_PhysMemRestoreFromImage(benchmark::State& state) {
  PhysMemConfig cfg = pm_cfg();
  cfg.noise_fraction = 0.03;
  PhysicalMemory pm(cfg);
  const PhysMemImage image = pm.snapshot();
  for (auto _ : state) {
    pm.restore(image);
    benchmark::DoNotOptimize(pm.free_frames());
  }
}
BENCHMARK(BM_PhysMemRestoreFromImage);

}  // namespace
}  // namespace ndp

BENCHMARK_MAIN();
