// Fig. 6: scaling with core count (1/4/8): (a) average PTW latency and
// (b) average translation-overhead share, NDP vs CPU (Radix baseline).
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Fig. 6: PTW latency and translation share vs core count",
                "paper Fig. 6 (a) and (b)");

  const unsigned core_counts[] = {1, 4, 8};
  Table a({"cores", "NDP PTW (cy)", "CPU PTW (cy)"});
  Table b({"cores", "NDP translation", "CPU translation"});
  for (unsigned cores : core_counts) {
    std::vector<double> nl, cl, nf, cf;
    for (const WorkloadInfo& info : all_workload_info()) {
      const RunResult ndp = run_experiment(bench::base_spec(
          SystemKind::kNdp, cores, Mechanism::kRadix, info.kind));
      const RunResult cpu = run_experiment(bench::base_spec(
          SystemKind::kCpu, cores, Mechanism::kRadix, info.kind));
      nl.push_back(ndp.avg_ptw_latency);
      cl.push_back(cpu.avg_ptw_latency);
      nf.push_back(ndp.translation_fraction);
      cf.push_back(cpu.translation_fraction);
    }
    a.add_row({std::to_string(cores), Table::num(bench::mean(nl), 1),
               Table::num(bench::mean(cl), 1)});
    b.add_row({std::to_string(cores), Table::pct(bench::mean(nf)),
               Table::pct(bench::mean(cf))});
  }
  std::cout << "(a) average PTW latency\n";
  a.print(std::cout);
  std::cout << "\n(b) average translation share of execution\n";
  b.print(std::cout);
  std::cout << "\nPaper reference points: NDP PTW 242.85 -> 474.56 -> 551.83 cy"
               " (1 -> 4 -> 8 cores),\nrising overhead share; CPU roughly flat"
               " on both metrics.\n";
  return 0;
}
