// Fig. 6: scaling with core count (1/4/8): (a) average PTW latency and
// (b) average translation-overhead share, NDP vs CPU (Radix baseline).
//
// Thin wrapper over the sweep runner: the grid is the checked-in
// experiments/fig06_core_scaling.json (duplicated here as a RunConfig so the
// bench runs from any directory), cells execute host-parallel, and the rows
// come from the shared aggregation path (mean_metric) — no bespoke loops.
#include <iostream>

#include "bench/bench_util.h"
#include "sim/sweep_runner.h"

using namespace ndp;

int main() {
  bench::header("Fig. 6: PTW latency and translation share vs core count",
                "paper Fig. 6 (a) and (b)");

  RunConfig cfg;
  cfg.name = "fig06_core_scaling";
  cfg.systems = {SystemKind::kNdp, SystemKind::kCpu};
  cfg.mechanisms = {"Radix"};
  cfg.workloads.clear();
  for (const WorkloadInfo& info : all_workload_info())
    cfg.workloads.push_back(info.name);
  cfg.cores = {1, 4, 8};

  SweepOptions opts;
  opts.jobs = 0;  // all host threads; results are identical to a serial run
  const SweepResults results = run_sweep(cfg, opts);

  Table a({"cores", "NDP PTW (cy)", "CPU PTW (cy)"});
  Table b({"cores", "NDP translation", "CPU translation"});
  for (unsigned cores : cfg.cores) {
    CellFilter ndp, cpu;
    ndp.system = SystemKind::kNdp;
    cpu.system = SystemKind::kCpu;
    ndp.cores = cpu.cores = cores;
    a.add_row({std::to_string(cores),
               Table::num(mean_metric(results, Metric::kPtwLatency, ndp), 1),
               Table::num(mean_metric(results, Metric::kPtwLatency, cpu), 1)});
    b.add_row(
        {std::to_string(cores),
         Table::pct(mean_metric(results, Metric::kTranslationFraction, ndp)),
         Table::pct(mean_metric(results, Metric::kTranslationFraction, cpu))});
  }
  std::cout << "(a) average PTW latency\n";
  a.print(std::cout);
  std::cout << "\n(b) average translation share of execution\n";
  b.print(std::cout);
  std::cout << "\nPaper reference points: NDP PTW 242.85 -> 474.56 -> 551.83 cy"
               " (1 -> 4 -> 8 cores),\nrising overhead share; CPU roughly flat"
               " on both metrics.\n";
  return 0;
}
