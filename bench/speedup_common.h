// Shared driver for Figs. 12/13/14: speedup of ECH / Huge Page / NDPage /
// Ideal over the Radix baseline on the N-core NDP system, per workload.
#pragma once

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"

namespace ndp::bench {

inline int run_speedup_figure(unsigned cores, const char* figure) {
  header("Fig. " + std::string(figure) + ": speedup over Radix, " +
             std::to_string(cores) + "-core NDP",
         "paper Fig. " + std::string(figure));

  const std::vector<Mechanism> mechs = {Mechanism::kEch, Mechanism::kHugePage,
                                        Mechanism::kNdpage, Mechanism::kIdeal};
  Table t({"workload", "ECH", "HugePage", "NDPage", "Ideal", "radix PTW"});
  std::vector<double> ge, gh, gn, gi;
  for (const WorkloadInfo& info : all_workload_info()) {
    const RunSpec base =
        base_spec(SystemKind::kNdp, cores, Mechanism::kRadix, info.kind);
    const MechanismComparison mc = compare_mechanisms(base, mechs);
    const double e = mc.speedup_over_radix.at(Mechanism::kEch);
    const double h = mc.speedup_over_radix.at(Mechanism::kHugePage);
    const double n = mc.speedup_over_radix.at(Mechanism::kNdpage);
    const double i = mc.speedup_over_radix.at(Mechanism::kIdeal);
    ge.push_back(e);
    gh.push_back(h);
    gn.push_back(n);
    gi.push_back(i);
    t.add_row({info.name, Table::num(e, 3), Table::num(h, 3),
               Table::num(n, 3), Table::num(i, 3),
               Table::num(mc.results.at(Mechanism::kRadix).avg_ptw_latency, 0)});
  }
  t.add_row({"GMEAN", Table::num(geomean(ge), 3), Table::num(geomean(gh), 3),
             Table::num(geomean(gn), 3), Table::num(geomean(gi), 3), "-"});
  t.print(std::cout);
  return 0;
}

}  // namespace ndp::bench
