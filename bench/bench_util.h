// Shared helpers for the benchmark harness (one binary per paper table or
// figure; each prints the rows/series the paper reports).
//
// Figure benches are thin wrappers over the sweep runner: they construct
// the grid as a RunConfig (the same shape as the checked-in
// experiments/*.json, duplicated in code so a bench runs from any
// directory), execute it host-parallel with run_sweep(), and print through
// the shared aggregation path (summary_table / speedup_table /
// mean_metric) — no bespoke per-figure loops.
//
// Runtime control: set NDPAGE_INSTRS to change the per-core instruction
// budget (default 150k; the paper's shapes are stable well below its 500M
// because TLB/PWC/cache behaviour converges quickly at these reuse scales).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/experiment.h"
#include "sim/session.h"
#include "sim/sweep_runner.h"
#include "workloads/workload.h"

namespace ndp::bench {

/// Process-wide Session for benches that run cells one at a time (Figs.
/// 4/5/7, related work): every cell on the same platform key restores the
/// shared system image instead of rebuilding the 16 GB substrate.
/// run_sweep()-based benches get the same sharing internally.
inline Session& session() {
  static Session s;
  return s;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "(reproduces " << paper_ref << "; instructions/core = "
            << default_instructions() << ", override with NDPAGE_INSTRS)\n\n";
}

inline RunSpec base_spec(SystemKind sys, unsigned cores, Mechanism mech,
                         WorkloadKind wl) {
  RunSpec s;
  s.system = sys;
  s.cores = cores;
  s.mechanism = mech;
  s.workload = wl;
  return s;
}

/// Arithmetic mean.
inline double mean(const std::vector<double>& xs) {
  double sum = 0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

/// All host threads; cells are independent and results are byte-identical
/// to a serial run, so benches always parallelize.
inline SweepOptions parallel_opts() {
  SweepOptions opts;
  opts.jobs = 0;
  return opts;
}

/// Shared driver for Figs. 12/13/14: the paper's five mechanisms x every
/// workload on the N-core NDP system, speedups over Radix with geomean
/// rows — one run_sweep() grid, printed via the shared speedup_table().
inline int run_speedup_figure(unsigned cores, const char* figure) {
  header("Fig. " + std::string(figure) + ": speedup over Radix, " +
             std::to_string(cores) + "-core NDP",
         "paper Fig. " + std::string(figure));

  RunConfig cfg;
  cfg.name = "fig" + std::string(figure) + "_speedup";
  cfg.mechanisms = {"Radix", "ECH", "HugePage", "NDPage", "Ideal"};
  cfg.workloads.clear();
  for (const WorkloadInfo& info : all_workload_info())
    cfg.workloads.push_back(info.name);
  cfg.cores = {cores};
  cfg.baseline = "Radix";

  const SweepResults results = run_sweep(cfg, parallel_opts());
  speedup_table(results, cfg.baseline).print(std::cout);
  return 0;
}

}  // namespace ndp::bench
