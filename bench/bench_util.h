// Shared helpers for the benchmark harness (one binary per paper table or
// figure; each prints the rows/series the paper reports).
//
// Runtime control: set NDPAGE_INSTRS to change the per-core instruction
// budget (default 150k; the paper's shapes are stable well below its 500M
// because TLB/PWC/cache behaviour converges quickly at these reuse scales).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/experiment.h"
#include "workloads/workload.h"

namespace ndp::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "(reproduces " << paper_ref << "; instructions/core = "
            << default_instructions() << ", override with NDPAGE_INSTRS)\n\n";
}

inline RunSpec base_spec(SystemKind sys, unsigned cores, Mechanism mech,
                         WorkloadKind wl) {
  RunSpec s;
  s.system = sys;
  s.cores = cores;
  s.mechanism = mech;
  s.workload = wl;
  return s;
}

/// Arithmetic mean.
inline double mean(const std::vector<double>& xs) {
  double sum = 0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

}  // namespace ndp::bench
