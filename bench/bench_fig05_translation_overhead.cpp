// Fig. 5: percentage of execution time spent on address translation in
// 4-core NDP and CPU systems (Radix baseline).
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Fig. 5: address-translation share of execution, 4-core",
                "paper Fig. 5");

  Table t({"workload", "NDP translation", "NDP other", "CPU translation",
           "CPU other"});
  std::vector<double> ndp_frac, cpu_frac;
  for (const WorkloadInfo& info : all_workload_info()) {
    const RunResult ndp = bench::session().run(
        bench::base_spec(SystemKind::kNdp, 4, Mechanism::kRadix, info.kind));
    const RunResult cpu = bench::session().run(
        bench::base_spec(SystemKind::kCpu, 4, Mechanism::kRadix, info.kind));
    ndp_frac.push_back(ndp.translation_fraction);
    cpu_frac.push_back(cpu.translation_fraction);
    t.add_row({info.name, Table::pct(ndp.translation_fraction),
               Table::pct(1 - ndp.translation_fraction),
               Table::pct(cpu.translation_fraction),
               Table::pct(1 - cpu.translation_fraction)});
  }
  t.add_row({"AVG", Table::pct(bench::mean(ndp_frac)),
             Table::pct(1 - bench::mean(ndp_frac)),
             Table::pct(bench::mean(cpu_frac)),
             Table::pct(1 - bench::mean(cpu_frac))});
  t.print(std::cout);
  std::cout << "\nPaper reference points: NDP avg 67.1%, CPU avg 34.51%.\n";
  return 0;
}
