// Ablation: decompose NDPage into its two mechanisms (paper SV-A and SV-B).
//   Radix               — baseline
//   Bypass only         — radix table, metadata skips the caches
//   Flatten only        — flattened table, metadata stays cacheable
//   NDPage (both)       — the paper's full design
// Run on a contention-sensitive subset at 1 and 8 cores.
//
// Ported onto run_sweep(): the whole variant x workload x cores grid is one
// spec list executed host-parallel; rows index into the deterministic,
// spec-ordered result set.
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Ablation: bypass-only vs flatten-only vs full NDPage",
                "paper SV design-choice decomposition");

  const WorkloadKind wls[] = {WorkloadKind::kRND, WorkloadKind::kPR,
                              WorkloadKind::kXS, WorkloadKind::kGEN};
  const unsigned core_counts[] = {1u, 8u};

  // Variants differ in (mechanism, overrides), which a per-spec list
  // expresses directly. Order: cores-major, workload, then the 4 variants.
  std::vector<RunSpec> specs;
  for (unsigned cores : core_counts) {
    for (WorkloadKind wl : wls) {
      const RunSpec radix =
          bench::base_spec(SystemKind::kNdp, cores, Mechanism::kRadix, wl);
      RunSpec bypass_only = radix;
      bypass_only.overrides.bypass = true;  // radix table + metadata bypass
      RunSpec flatten_only =
          bench::base_spec(SystemKind::kNdp, cores, Mechanism::kNdpage, wl);
      flatten_only.overrides.bypass = false;  // flat table, cacheable PTEs
      const RunSpec full =
          bench::base_spec(SystemKind::kNdp, cores, Mechanism::kNdpage, wl);
      specs.push_back(radix);
      specs.push_back(bypass_only);
      specs.push_back(flatten_only);
      specs.push_back(full);
    }
  }

  const SweepResults results = run_sweep(specs, bench::parallel_opts());

  std::size_t cell = 0;
  auto cycles = [&]() {
    return static_cast<double>(results.cells[cell++].result.total_cycles);
  };
  for (unsigned cores : core_counts) {
    Table t({"workload", "bypass only", "flatten only", "NDPage"});
    std::cout << cores << "-core NDP (speedup over Radix):\n";
    for (WorkloadKind wl : wls) {
      const double radix = cycles();
      const double bypass_only = cycles();
      const double flatten_only = cycles();
      const double full = cycles();
      t.add_row({to_string(wl), Table::num(radix / bypass_only, 3),
                 Table::num(radix / flatten_only, 3),
                 Table::num(radix / full, 3)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: the mechanisms compose — the full design beats"
               " either half,\nwith the bypass mattering more under multicore"
               " contention (pollution + traffic).\n";
  return 0;
}
