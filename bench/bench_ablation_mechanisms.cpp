// Ablation: decompose NDPage into its two mechanisms (paper SV-A and SV-B).
//   Radix               — baseline
//   Bypass only         — radix table, metadata skips the caches
//   Flatten only        — flattened table, metadata stays cacheable
//   NDPage (both)       — the paper's full design
// Run on a contention-sensitive subset at 1 and 8 cores.
#include <iostream>

#include "bench/bench_util.h"

using namespace ndp;

int main() {
  bench::header("Ablation: bypass-only vs flatten-only vs full NDPage",
                "paper SV design-choice decomposition");

  const WorkloadKind wls[] = {WorkloadKind::kRND, WorkloadKind::kPR,
                              WorkloadKind::kXS, WorkloadKind::kGEN};
  for (unsigned cores : {1u, 8u}) {
    Table t({"workload", "bypass only", "flatten only", "NDPage"});
    std::cout << cores << "-core NDP (speedup over Radix):\n";
    for (WorkloadKind wl : wls) {
      const RunSpec radix_spec =
          bench::base_spec(SystemKind::kNdp, cores, Mechanism::kRadix, wl);
      const double radix =
          static_cast<double>(run_experiment(radix_spec).total_cycles);

      RunSpec bypass_only = radix_spec;
      bypass_only.overrides.bypass = true;  // radix table + metadata bypass
      RunSpec flatten_only =
          bench::base_spec(SystemKind::kNdp, cores, Mechanism::kNdpage, wl);
      flatten_only.overrides.bypass = false;  // flat table, cacheable PTEs
      const RunSpec full =
          bench::base_spec(SystemKind::kNdp, cores, Mechanism::kNdpage, wl);

      t.add_row(
          {to_string(wl),
           Table::num(radix / double(run_experiment(bypass_only).total_cycles), 3),
           Table::num(radix / double(run_experiment(flatten_only).total_cycles), 3),
           Table::num(radix / double(run_experiment(full).total_cycles), 3)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: the mechanisms compose — the full design beats"
               " either half,\nwith the bypass mattering more under multicore"
               " contention (pollution + traffic).\n";
  return 0;
}
